package renaming

import (
	"repro/internal/core"
	"repro/internal/countnet"
	"repro/internal/maxreg"
	"repro/internal/shmem"
	"repro/internal/sim"
	"repro/internal/sortnet"
	"repro/internal/tas"
)

// Core shared-memory abstractions, re-exported for users of the facade.
type (
	// Proc is the per-process execution context handed to Run bodies.
	Proc = shmem.Proc
	// Reg is a multi-writer multi-reader atomic register.
	Reg = shmem.Reg
	// Mem allocates shared objects bound to one runtime.
	Mem = shmem.Mem
	// Runtime executes process bodies against shared objects.
	Runtime = shmem.Runtime
	// Stats is the per-execution step accounting.
	Stats = shmem.Stats
	// Adversary chooses the schedule in the simulated runtime.
	Adversary = sim.Adversary
	// SimRuntime is the deterministic adversarial simulator.
	SimRuntime = sim.Runtime
	// TraceEvent is one scheduling decision of a traced simulation.
	TraceEvent = sim.TraceEvent
)

// Renaming and counting objects.
type (
	// StrongAdaptive is the paper's headline algorithm (Section 6.2).
	StrongAdaptive = core.StrongAdaptive
	// BitBatching is the non-adaptive strong renaming of Section 4.
	BitBatching = core.BitBatching
	// RenamingNetwork is the fixed-namespace construction of Section 5.
	RenamingNetwork = core.RenamingNetwork
	// LinearProbe is the folklore linear-time baseline.
	LinearProbe = core.LinearProbe
	// Counter is the monotone-consistent counter of Section 8.1.
	Counter = core.MonotoneCounter
	// FetchInc is the m-valued fetch-and-increment of Section 8.2.
	FetchInc = core.FetchInc
	// LTAS is the linearizable ℓ-test-and-set of Algorithm 1.
	LTAS = core.LTestAndSet
	// Renamer is the common interface of all renaming algorithms.
	Renamer = core.Renamer
	// LinearizableCounter is the deterministic counter of Aspnes, Attiya
	// and Censor [17] — the heavier baseline the paper's monotone counter
	// improves on by a log factor.
	LinearizableCounter = maxreg.AACCounter
	// MaxRegister is a linearizable max register [17].
	MaxRegister = maxreg.MaxReg
	// LongLived is the long-lived renaming extension (Section 9 future
	// work): acquired names can be released and are recycled.
	LongLived = core.LongLived
	// CountingNetwork is the bitonic counting network of [26], the related
	// object Section 3 contrasts with renaming networks.
	CountingNetwork = countnet.Network
)

// NewSim returns the deterministic simulator runtime: processes advance in
// lock-step under adv's schedule, coin flips derive from seed, and the
// returned Stats carry exact per-process step counts. Each Run consumes
// the runtime; rt.Reset(seed, adv) rewinds it for the next execution while
// keeping every register (and therefore every instantiated object graph)
// valid — the repeated-execution fast path.
func NewSim(seed uint64, adv Adversary) *SimRuntime {
	return sim.New(seed, adv)
}

// NewSimCapped is NewSim with a global step budget; the run aborts (with
// Stats.StepCapHit set) instead of running forever under a starvation-prone
// schedule.
func NewSimCapped(seed uint64, adv Adversary, cap uint64) *SimRuntime {
	return sim.New(seed, adv, sim.WithStepCap(cap))
}

// NewSimTraced is NewSim with an execution-transcript observer: fn runs
// synchronously on every scheduling decision.
func NewSimTraced(seed uint64, adv Adversary, fn func(TraceEvent)) *SimRuntime {
	return sim.New(seed, adv, sim.WithTrace(fn))
}

// NativeOption configures the native runtime.
type NativeOption = shmem.NativeOption

// Native is the concrete native runtime. Serving loops that need the
// beyond-Runtime surface (standalone procs via NewProc, reusable
// execution groups via NewRunGroup) downcast the NewNative result to it.
type Native = shmem.Native

// NativeProc is the native runtime's per-process context. Register
// operations on native registers devirtualize against it: the step
// accounting behind every Read/Write/TAS compiles to direct calls.
type NativeProc = shmem.NativeProc

// NewNative returns the concurrent runtime: real goroutines over
// sync/atomic registers. Interleavings are up to the Go scheduler; step
// counts remain exact and are accounted per process without any shared
// state, so the step hot path is contention-free.
func NewNative(seed uint64, opts ...NativeOption) Runtime {
	return shmem.NewNative(seed, opts...)
}

// WithTimestamps makes the native runtime maintain a shared atomic clock
// behind Proc.Now, so operation intervals can be compared across processes
// (the linearizability and monotone-consistency checkers need this). It
// serializes every step on one cache line — leave it off for benchmarks
// and production use, where Now reports the process-local step count.
func WithTimestamps() NativeOption {
	return shmem.WithTimestamps()
}

// WithRegisterPadding overrides the native runtime's automatic choice of
// register layout. By default registers are padded to a cache line each
// when GOMAXPROCS > 1 (false sharing only exists under real parallelism;
// on a single P padding just inflates the working set); the knob pins the
// layout for measurements of either configuration.
func WithRegisterPadding(on bool) NativeOption {
	return shmem.WithRegisterPadding(on)
}

// Schedules for the simulated runtime.

// RoundRobin returns the fair cyclic schedule.
func RoundRobin() Adversary { return sim.NewRoundRobin() }

// RoundRobinBurst returns the fair cyclic schedule granting each process
// burst consecutive steps per turn as one scheduler grant. The schedule is
// identical to re-choosing the process burst times; the steps inside a
// burst run without re-entering the scheduler (see BENCHMARKS.md).
func RoundRobinBurst(burst int) Adversary { return sim.NewRoundRobinBurst(burst) }

// RandomSchedule returns a seeded uniformly random schedule.
func RandomSchedule(seed uint64) Adversary { return sim.NewRandom(seed) }

// Sequential returns the fully serializing schedule (one process at a
// time, in id order).
func Sequential() Adversary { return sim.NewSequential() }

// AntiCoin returns a strong-adversary heuristic that starves processes
// whose latest coin flip favors them.
func AntiCoin(seed uint64) Adversary { return sim.NewAntiCoin(seed) }

// Laggard returns a schedule that starves one victim process until all
// others finish.
func Laggard(victim int) Adversary { return sim.NewLaggard(victim) }

// CrashAt wraps an adversary so that each process listed in at crashes the
// first time it is scheduled at or after the given global clock value —
// the simulator-only form. The runtime-agnostic form is a FaultPlan
// (CrashAtStep, in process-local steps), which also arms on the native
// runtime; see NewExecution.
func CrashAt(inner Adversary, at map[int]uint64) Adversary {
	return sim.NewCrashPlan(inner, at)
}

// Scripted returns a schedule that follows an explicit list of process
// indices (falling back to the lowest ready process when the scripted one
// is not ready, and to round robin after the script ends). Enumerating
// scripts gives exhaustive bounded model checking; fuzzing them gives
// property-based schedule coverage.
func Scripted(script []int) Adversary { return sim.NewReplay(script) }

// Oscillator returns a bursty schedule: each ready process runs burst
// consecutive steps before the next takes over.
func Oscillator(burst int) Adversary { return sim.NewOscillator(burst) }

// Option configures object constructors. Options are runtime-independent:
// they are part of an object's compiled blueprint, not of its instantiation.
type Option func(*options)

type options struct {
	hardware bool
	base     sortnet.Base
}

// compileOptions folds the option list into the blueprint-side settings.
func compileOptions(opts []Option) options {
	o := options{base: sortnet.BaseOEM}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// maker resolves the internal two-process TAS maker for one instantiation
// on mem — the runtime-dependent half of the options.
func (o options) maker(mem Mem) tas.SidedMaker {
	if o.hardware {
		return tas.MakeUnit
	}
	// Register-based TAS objects are allocated in droves; the pool maker
	// batches them on serial (simulator) runtimes.
	return tas.MakeTwoProcPool(mem)
}

// WithHardwareTAS makes internal two-process test-and-set objects a single
// compare-and-swap each. The paper notes this yields a deterministic
// algorithm with no loss in step complexity on machines with hardware TAS
// (Section 1, Discussion); it is also the fast choice under the native
// runtime.
func WithHardwareTAS() Option {
	return func(o *options) { o.hardware = true }
}

// WithRegisterTAS makes internal two-process test-and-set objects the
// randomized register-based protocol with the Tromp–Vitányi cost profile
// (the default; matches the paper's pure shared-memory model).
func WithRegisterTAS() Option {
	return func(o *options) { o.hardware = false }
}

// WithBalancedBase builds adaptive sorting networks from the balanced
// network of Dowd–Perl–Rudolph–Saks instead of Batcher's odd-even
// mergesort. Same depth exponent (c = 2), different constants — the
// ablation knob of BENCHMARKS.md.
func WithBalancedBase() Option {
	return func(o *options) { o.base = sortnet.BaseBalanced }
}

// Two-phase construction. Every object is split into a compiled
// *blueprint* — the runtime-independent shape: topology, geometry,
// layouts, compiled once per parameter point and cached process-wide — and
// an *instantiation* that stamps shared state onto one runtime. The NewX
// constructors below compile-and-instantiate in one call; the CompileX
// functions expose the blueprint so serving loops can instantiate the same
// shape on many runtimes, and instantiated objects support Reset so one
// instantiation serves many executions without reallocation:
//
//	bp := renaming.CompileRenaming()        // once per process
//	rt := renaming.NewSim(seed0, adv0)
//	ren := bp.Instantiate(rt)               // once per object graph
//	rt.Run(k, body)
//	for seed, adv := range executions {
//	    ren.Reset()                         // zero the shared state in place
//	    rt.Reset(seed, adv)                 // rewind the runtime
//	    rt.Run(k, body)                     // allocation-free after warmup
//	}
//
// For a fixed (seed, adversary) the reset path is bit-identical to fresh
// construction (the reuse equivalence tests pin this down).

// Resettable is implemented by every instantiated object in this package:
// Reset restores the shared state to its just-instantiated value without
// reallocating the object graph. Reset must only run between executions.
type Resettable = shmem.Resettable

// RenamingBlueprint is the compiled shape of the Section 6.2 strong
// adaptive renamer.
type RenamingBlueprint struct {
	o  options
	bp *core.StrongAdaptiveBlueprint
}

// CompileRenaming returns the process-wide cached blueprint for the strong
// adaptive renaming object with the given options.
func CompileRenaming(opts ...Option) *RenamingBlueprint {
	o := compileOptions(opts)
	return &RenamingBlueprint{o: o, bp: core.CompileStrongAdaptive(o.base)}
}

// Instantiate stamps the blueprint's shared state onto mem.
func (b *RenamingBlueprint) Instantiate(mem Mem) *StrongAdaptive {
	return b.bp.Instantiate(mem, b.o.maker(mem))
}

// NewRenaming builds the strong adaptive renaming object of Section 6.2 on
// mem: names come out 1..k for any contention k, Rename costs O(log k)
// expected test-and-set entries. Each invocation needs a globally unique
// nonzero uid (process id + 1 for one-shot use).
func NewRenaming(mem Mem, opts ...Option) *StrongAdaptive {
	return CompileRenaming(opts...).Instantiate(mem)
}

// BitBatchingBlueprint is the compiled shape of the Section 4 algorithm.
type BitBatchingBlueprint struct {
	o  options
	bp *core.BitBatchingBlueprint
}

// CompileBitBatching returns the process-wide cached blueprint for
// renaming into exactly n names.
func CompileBitBatching(n int, opts ...Option) *BitBatchingBlueprint {
	return &BitBatchingBlueprint{o: compileOptions(opts), bp: core.CompileBitBatching(n)}
}

// Instantiate stamps the blueprint's shared state onto mem.
func (b *BitBatchingBlueprint) Instantiate(mem Mem) *BitBatching {
	return b.bp.Instantiate(mem, b.o.maker(mem))
}

// NewBitBatchingRenaming builds the Section 4 algorithm: renaming into
// exactly n names for up to n participants, O(log² n) test-and-set probes
// per process w.h.p.
func NewBitBatchingRenaming(mem Mem, n int, opts ...Option) *BitBatching {
	return CompileBitBatching(n, opts...).Instantiate(mem)
}

// NetworkRenamingBlueprint is the compiled shape of the Section 5
// construction: the materialized sorting network (shared process-wide) and
// its comparator lookup tables.
type NetworkRenamingBlueprint struct {
	o  options
	bp *core.RenamingNetworkBlueprint
}

// CompileNetworkRenaming returns the process-wide cached blueprint of the
// Section 5 construction over Batcher's odd-even mergesort network of
// width m.
func CompileNetworkRenaming(m int, opts ...Option) *NetworkRenamingBlueprint {
	return &NetworkRenamingBlueprint{
		o:  compileOptions(opts),
		bp: core.CompileRenamingNetwork(sortnet.SharedOEMNet(m)),
	}
}

// Instantiate stamps the blueprint's shared state onto mem.
func (b *NetworkRenamingBlueprint) Instantiate(mem Mem) *RenamingNetwork {
	return b.bp.Instantiate(mem, b.o.maker(mem))
}

// NewNetworkRenaming builds the Section 5 construction over Batcher's
// odd-even mergesort network of width m: initial names must lie in [1, m];
// the k participants rename into 1..k in depth O(log² m) comparators.
func NewNetworkRenaming(mem Mem, m int, opts ...Option) *RenamingNetwork {
	return CompileNetworkRenaming(m, opts...).Instantiate(mem)
}

// NewLinearProbeRenaming builds the linear-time baseline renamer.
func NewLinearProbeRenaming(mem Mem, opts ...Option) *LinearProbe {
	return core.NewLinearProbe(mem, compileOptions(opts).maker(mem))
}

// CounterBlueprint is the compiled shape of the Section 8.1 counter (its
// renamer's blueprint; the max register has no precomputable shape).
type CounterBlueprint struct {
	o  options
	bp *core.StrongAdaptiveBlueprint
}

// CompileCounter returns the process-wide cached blueprint for the
// monotone-consistent counter.
func CompileCounter(opts ...Option) *CounterBlueprint {
	o := compileOptions(opts)
	return &CounterBlueprint{o: o, bp: core.CompileStrongAdaptive(o.base)}
}

// Instantiate stamps the blueprint's shared state onto mem.
func (b *CounterBlueprint) Instantiate(mem Mem) *Counter {
	return core.NewMonotoneCounterWith(b.bp.Instantiate(mem, b.o.maker(mem)), maxreg.NewUnbounded(mem))
}

// NewCounter builds the monotone-consistent counter of Section 8.1:
// increments cost O(log v) expected steps after v increments; reads return
// a value between the completed and started increment counts and are
// mutually ordered. Not linearizable — see the package tests for the
// paper's counterexample.
func NewCounter(mem Mem, opts ...Option) *Counter {
	return CompileCounter(opts...).Instantiate(mem)
}

// NewLinearizableCounter builds the Aspnes–Attiya–Censor counter [17] for
// up to n incrementing processes: linearizable, deterministic, with
// O(log n · log v) increments — the baseline of Lemma 4's comparison.
func NewLinearizableCounter(mem Mem, n int) *LinearizableCounter {
	return maxreg.NewAACCounter(mem, n)
}

// NewMaxRegister builds an unbounded linearizable max register [17] with
// O(log v) operations.
func NewMaxRegister(mem Mem) MaxRegister {
	return maxreg.NewUnbounded(mem)
}

// NewLTAS builds the linearizable ℓ-test-and-set of Algorithm 1: exactly
// min(ℓ, callers) invocations return true.
func NewLTAS(mem Mem, ell uint64, opts ...Option) *LTAS {
	return core.NewLTestAndSet(mem, ell, compileOptions(opts).maker(mem))
}

// NewFetchInc builds the linearizable m-valued fetch-and-increment of
// Algorithm 2: the i-th increment returns i (from 0), saturating at m−1,
// in O(log k · log m) expected steps.
func NewFetchInc(mem Mem, m uint64, opts ...Option) *FetchInc {
	return core.NewFetchInc(mem, m, compileOptions(opts).maker(mem))
}

// CountingNetworkBlueprint is the compiled wiring of Bitonic[w] (cached
// process-wide per width).
type CountingNetworkBlueprint = countnet.Blueprint

// CompileCountingNetwork returns the process-wide cached blueprint of the
// bitonic counting network Bitonic[w] (w a power of two).
func CompileCountingNetwork(w int) *CountingNetworkBlueprint {
	return countnet.CompileBitonic(w)
}

// NewCountingNetwork builds the bitonic counting network Bitonic[w] of
// Aspnes, Herlihy and Shavit [26] (w a power of two): tokens traversing it
// balance across outputs with the step property, and Next turns that into
// a shared counter. With one token per input wire it assigns tight ranks —
// the Section 3 equivalence with renaming networks [27].
func NewCountingNetwork(mem Mem, w int) *CountingNetwork {
	return countnet.NewBitonic(mem, w)
}

// NewLongLived builds the long-lived renaming extension: Acquire hands out
// a name unique among current holders (recycling released names before
// growing the namespace) and Release returns it. This is the engineering
// answer to the paper's Section 9 "long-lived renaming" direction — a
// lock-free free-list over the one-shot optimal renamer, not a solution to
// the open theoretical problem.
//
// LongLived supports Reset: the free list, the renamer, and every name —
// including names held by processes that crashed mid-execution — are
// reclaimed wholesale, so crashed holders cannot leak names across reuses.
func NewLongLived(mem Mem, opts ...Option) *LongLived {
	return core.NewLongLived(mem, CompileRenaming(opts...).Instantiate(mem))
}
