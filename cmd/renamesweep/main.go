// Command renamesweep drives the parallel sweep engine: a work-stealing
// fleet of deterministic simulated executions across objects × adversary
// families × crash plans × seeds, with per-worker arenas that amortize
// run-state construction to an allocation-free steady state.
//
// Two modes:
//
//   - the default grid mode enumerates the whole cross product and checks
//     every execution against the paper's validity conditions (strong
//     renaming: names unique and tight in [1..k]; counter monotone
//     consistency);
//   - -search N switches to annealing search: per object, independent
//     chains mutate (adversary seed, crash plan) pairs hunting maximal
//     step complexity.
//
// Either way the report is a pure function of the task space: bit-identical
// for any -workers value, any steal order, and any repetition. Worst cases
// (and violations, should one ever appear) are harvested — re-recorded
// through the execution layer into an event log and replayed through the
// trace-forcing adversary to prove the log reproduces the execution bit
// for bit.
//
// The process exits non-zero unless the verdict is "ok", so CI can gate on
// it directly.
//
// Usage:
//
//	renamesweep -list
//	renamesweep [-objects rename8,counter8] [-seeds N] [-workers N]
//	            [-budget N] [-search N] [-chains N] [-json]
//	renamesweep -regressions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	renaming "repro"
)

func main() {
	objects := flag.String("objects", "", "comma-separated catalog objects to sweep (default: all; see -list)")
	list := flag.Bool("list", false, "list the object catalog and exit")
	seeds := flag.Int("seeds", 4, "runtime seeds per (object, adversary, plan) cell: 1..N")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); the report does not depend on it")
	budget := flag.Int("budget", 0, "cap total executions (0 = the whole grid / search schedule)")
	search := flag.Int("search", 0, "annealing-search iterations per chain (0 = grid mode)")
	chains := flag.Int("chains", 0, "search chains per object (0 = default)")
	regressions := flag.Bool("regressions", false, "re-verify the frozen worst-case schedules and exit")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-12s %3s %3s\n", "object", "kind", "k", "n")
		for _, o := range renaming.SweepObjects() {
			n := "-"
			if o.N > 0 {
				n = fmt.Sprint(o.N)
			}
			fmt.Printf("%-12s %-12s %3d %3s\n", o.Name, o.Kind, o.K, n)
		}
		return
	}

	if *regressions {
		os.Exit(runRegressions(*jsonOut))
	}

	objs := renaming.SweepObjects()
	if *objects != "" {
		objs = objs[:0]
		for _, name := range strings.Split(*objects, ",") {
			o, ok := renaming.SweepObjectByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "renamesweep: unknown object %q; available:", name)
				for _, c := range renaming.SweepObjects() {
					fmt.Fprintf(os.Stderr, " %s", c.Name)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			objs = append(objs, o)
		}
	}

	space, err := renaming.NewSweepSpace(objs, *seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "renamesweep: %v\n", err)
		os.Exit(2)
	}
	s, err := renaming.NewSweep(space, renaming.SweepOptions{
		Workers:     *workers,
		Budget:      *budget,
		SearchIters: *search,
		Chains:      *chains,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "renamesweep: %v\n", err)
		os.Exit(2)
	}
	rep := s.Run()

	if *jsonOut {
		os.Stdout.Write(rep.JSON())
		fmt.Println()
	} else {
		printReport(rep)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}

func printReport(rep *renaming.SweepReport) {
	fmt.Printf("mode %s  workers %d  tasks %d  executions %d  %.0f exec/sec  verdict %s\n\n",
		rep.Mode, rep.Workers, rep.Tasks, rep.Executions, rep.ExecPerSec, rep.Verdict)
	fmt.Printf("%-12s %10s %8s %6s %5s %10s %9s  %s\n",
		"object", "execs", "crashes", "viols", "caps", "meansteps", "checksum", "worst")
	for _, o := range rep.Objects {
		fmt.Printf("%-12s %10d %8d %6d %5d %10.1f %9.9s  steps=%d seed=%d adv=%s plan=%s\n",
			o.Object, o.Executions, o.Crashes, o.Violations, o.CapHits, o.MeanSteps, o.Checksum,
			o.Worst.Steps, o.Worst.Seed, o.Worst.Adv, o.Worst.Plan)
	}
	if len(rep.Harvests) > 0 {
		fmt.Println()
		for _, h := range rep.Harvests {
			status := "ok"
			if h.CheckErr != "" {
				status = "INVALID: " + h.CheckErr
			}
			fmt.Printf("harvest %-12s %-9s events=%d decisions=%d source_match=%v replay_identical=%v %s\n",
				h.Object, h.Why, h.Events, h.Decisions, h.SourceMatch, h.ReplayIdentical, status)
		}
	}
}

func runRegressions(jsonOut bool) int {
	code := 0
	for _, reg := range renaming.SweepRegressions() {
		h, err := renaming.RunSweepRegression(reg)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", reg.Name, err)
			code = 1
		case jsonOut:
			// One JSON object per line, replayable downstream.
			b := struct {
				Name string `json:"name"`
				renaming.SweepHarvest
			}{reg.Name, h}
			fmt.Printf("%s\n", mustJSON(b))
		default:
			fmt.Printf("ok   %-18s steps=%d decisions=%d replay_identical=%v\n",
				reg.Name, h.Ref.Steps, h.Decisions, h.ReplayIdentical)
		}
	}
	return code
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
