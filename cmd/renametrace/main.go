// Command renametrace runs one execution of strong adaptive renaming and
// prints the full schedule transcript: every scheduling decision (global
// order, process, operation), the per-process step accounting, and the
// resulting names. Executions go through the unified execution layer
// (renaming.NewExecution), so the same command drives both runtimes:
//
//   - the default simulated mode runs under a chosen adversary, with
//     optional crash injection; runs are deterministic in (seed, adversary,
//     crash plan), so a transcript is a reproducible witness of one
//     asynchronous execution;
//   - -native records a real concurrent execution on the native runtime,
//     checks the recorded trace against the strong-renaming validity
//     conditions, and replays it bit-identically on the simulator through
//     the trace adversary — turning one hardware interleaving into a
//     deterministic artifact.
//
// -json emits the whole transcript (run parameters, names, per-process
// accounting, every event, and the native-replay verdict) as one JSON
// object for downstream tooling.
//
// Usage:
//
//	renametrace [-k 6] [-seed 1] [-adversary random] [-max 40] \
//	            [-crash p@s] [-native] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	renaming "repro"
	"repro/internal/shmem"
)

func main() {
	k := flag.Int("k", 6, "number of participating processes")
	seed := flag.Uint64("seed", 1, "coin seed (same seed+adversary+crash plan ⇒ same execution)")
	advName := flag.String("adversary", "random", "roundrobin | random | sequential | anticoin | laggard | oscillator (simulated mode)")
	maxLines := flag.Int("max", 40, "print at most this many trace lines (0 = all; text mode only)")
	crash := flag.String("crash", "", "fault plan, e.g. 2@15,4@60: crash process p after s completed steps")
	native := flag.Bool("native", false, "record on the native runtime, check the trace, replay it on the simulator")
	jsonOut := flag.Bool("json", false, "emit the full transcript as JSON")
	flag.Parse()

	plan, err := parseCrash(*crash)
	if err != nil {
		fatal(err)
	}

	var rt renaming.Runtime
	mode := "sim"
	if *native {
		mode = "native"
		rt = renaming.NewNative(*seed)
	} else {
		adv, err := pickAdversary(*advName, *seed)
		if err != nil {
			fatal(err)
		}
		rt = renaming.NewSim(*seed, adv)
	}

	ex := renaming.NewExecution(rt, *k)
	if plan != nil {
		ex.Faults(plan)
	}
	log := ex.Record()

	ren := renaming.NewRenaming(rt)
	names := make([]uint64, *k)
	st := ex.Run(func(p renaming.Proc) {
		n := ren.Rename(p, uint64(p.ID())+1)
		names[p.ID()] = n
		ex.MarkName(p, n)
	})

	checkErr := renaming.CheckRenamingTrace(log)
	var replay *replayReport
	if *native {
		replay = verifyReplay(log, *k, names, st)
	}

	if *jsonOut {
		emitJSON(mode, *k, *seed, *advName, *crash, names, st, log, checkErr, replay)
		return
	}
	emitText(mode, *k, *seed, *advName, *maxLines, names, st, log, checkErr, replay)
}

// verifyReplay re-executes a native recording on the simulator and compares
// names and per-process accounting — the record/replay contract, verified
// on every -native run.
func verifyReplay(log *renaming.EventLog, k int, names []uint64, st *renaming.Stats) *replayReport {
	rt := renaming.Replay(log)
	ren := renaming.NewRenaming(rt)
	renames := make([]uint64, k)
	rst := rt.Run(k, func(p renaming.Proc) {
		renames[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
	})
	rep := &replayReport{NamesMatch: true, CountsMatch: true}
	for p := 0; p < k; p++ {
		crashed := st.Crashed != nil && st.Crashed[p]
		if !crashed && renames[p] != names[p] {
			rep.NamesMatch = false
		}
		if st.PerProc[p] != rst.PerProc[p] {
			rep.CountsMatch = false
		}
	}
	return rep
}

type replayReport struct {
	NamesMatch  bool `json:"names_match"`
	CountsMatch bool `json:"counts_match"`
}

func emitText(mode string, k int, seed uint64, advName string, maxLines int, names []uint64, st *renaming.Stats, log *renaming.EventLog, checkErr error, replay *replayReport) {
	if mode == "native" {
		fmt.Printf("strong adaptive renaming: k=%d seed=%d runtime=native (recorded)\n", k, seed)
	} else {
		fmt.Printf("strong adaptive renaming: k=%d seed=%d adversary=%s\n", k, seed, advName)
	}
	lines := 0
	for _, e := range log.Events() {
		if e.Kind == renaming.EvMark {
			continue
		}
		lines++
		if maxLines > 0 && lines > maxLines {
			if lines == maxLines+1 {
				fmt.Println("  ... (truncated; use -max 0 for everything)")
			}
			continue
		}
		verb := e.Op.String()
		if e.Kind == renaming.EvCrash {
			verb = "CRASH"
		}
		fmt.Printf("  t=%-6d p%-3d %s\n", e.Seq, e.Proc, verb)
	}

	fmt.Printf("\n%d scheduling decisions total\n\n", lines)
	fmt.Println("proc  name  steps  reads  writes  cas  comparators  splitters  crashed")
	for i := range names {
		pc := st.PerProc[i]
		crashed := st.Crashed != nil && st.Crashed[i]
		fmt.Printf("%4d  %4d  %5d  %5d  %6d  %3d  %11d  %9d  %v\n",
			i, names[i], pc.Steps(),
			pc.Ops[shmem.OpRead], pc.Ops[shmem.OpWrite], pc.Ops[shmem.OpCAS],
			pc.Events[shmem.EvComparator], pc.Events[shmem.EvSplitter],
			crashed)
	}
	if checkErr != nil {
		fmt.Printf("\ntrace check: FAILED: %v\n", checkErr)
	} else {
		fmt.Printf("\ntrace check: ok (names valid)\n")
	}
	if replay != nil {
		fmt.Printf("sim replay: names match=%v, per-proc counts match=%v\n", replay.NamesMatch, replay.CountsMatch)
	}
}

func emitJSON(mode string, k int, seed uint64, advName, crash string, names []uint64, st *renaming.Stats, log *renaming.EventLog, checkErr error, replay *replayReport) {
	type jsonProc struct {
		Proc        int    `json:"proc"`
		Name        uint64 `json:"name"`
		Steps       uint64 `json:"steps"`
		Reads       uint64 `json:"reads"`
		Writes      uint64 `json:"writes"`
		CAS         uint64 `json:"cas"`
		Comparators uint64 `json:"comparators"`
		Splitters   uint64 `json:"splitters"`
		Crashed     bool   `json:"crashed"`
	}
	type jsonEvent struct {
		Seq  uint64 `json:"seq"`
		Proc int32  `json:"proc"`
		PSeq uint64 `json:"pseq"`
		Kind string `json:"kind"`
		Op   string `json:"op,omitempty"`
		Tag  string `json:"tag,omitempty"`
		Val  uint64 `json:"val,omitempty"`
	}
	out := struct {
		Schema    string        `json:"schema"`
		Mode      string        `json:"mode"`
		K         int           `json:"k"`
		Seed      uint64        `json:"seed"`
		Adversary string        `json:"adversary,omitempty"`
		Crash     string        `json:"crash,omitempty"`
		Decisions int           `json:"decisions"`
		Check     string        `json:"check"`
		Replay    *replayReport `json:"replay,omitempty"`
		Procs     []jsonProc    `json:"procs"`
		Events    []jsonEvent   `json:"events"`
	}{
		Schema: "renametrace/v1",
		Mode:   mode,
		K:      k,
		Seed:   seed,
		Crash:  crash,
		Check:  "ok",
		Replay: replay,
	}
	if mode == "sim" {
		out.Adversary = advName
	}
	if checkErr != nil {
		out.Check = checkErr.Error()
	}
	out.Decisions = log.Decisions()
	for i := range names {
		pc := st.PerProc[i]
		out.Procs = append(out.Procs, jsonProc{
			Proc:        i,
			Name:        names[i],
			Steps:       pc.Steps(),
			Reads:       pc.Ops[shmem.OpRead],
			Writes:      pc.Ops[shmem.OpWrite],
			CAS:         pc.Ops[shmem.OpCAS],
			Comparators: pc.Events[shmem.EvComparator],
			Splitters:   pc.Events[shmem.EvSplitter],
			Crashed:     st.Crashed != nil && st.Crashed[i],
		})
	}
	for _, e := range log.Events() {
		je := jsonEvent{Seq: e.Seq, Proc: e.Proc, PSeq: e.PSeq, Kind: e.Kind.String()}
		switch e.Kind {
		case renaming.EvMark:
			je.Tag = e.Tag.String()
			je.Val = e.Val
		default:
			je.Op = e.Op.String()
		}
		out.Events = append(out.Events, je)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "renametrace:", err)
	os.Exit(2)
}

func pickAdversary(name string, seed uint64) (renaming.Adversary, error) {
	switch name {
	case "roundrobin":
		return renaming.RoundRobin(), nil
	case "random":
		return renaming.RandomSchedule(seed), nil
	case "sequential":
		return renaming.Sequential(), nil
	case "anticoin":
		return renaming.AntiCoin(seed), nil
	case "laggard":
		return renaming.Laggard(0), nil
	case "oscillator":
		return renaming.Oscillator(8), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

// parseCrash turns "2@15,4@60" into a FaultPlan crashing process 2 after 15
// completed steps and process 4 after 60 — per-process step counts, the
// clock both runtimes share. Returns nil for the empty spec.
func parseCrash(s string) (*renaming.FaultPlan, error) {
	if s == "" {
		return nil, nil
	}
	at := make(map[int]uint64)
	for _, part := range strings.Split(s, ",") {
		pt := strings.SplitN(part, "@", 2)
		if len(pt) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want proc@step)", part)
		}
		p, err := strconv.Atoi(pt[0])
		if err != nil {
			return nil, fmt.Errorf("bad process in %q: %v", part, err)
		}
		t, err := strconv.ParseUint(pt[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad step in %q: %v", part, err)
		}
		at[p] = t
	}
	return renaming.CrashAtStep(at), nil
}
