// Command renametrace runs one simulated execution of strong adaptive
// renaming under a chosen adversary and prints the full schedule
// transcript: every scheduling decision (clock, process, operation), the
// per-process step accounting, and the resulting names. Runs are
// deterministic in (seed, adversary), so a transcript is a reproducible
// witness of one asynchronous execution.
//
// Usage:
//
//	renametrace [-k 6] [-seed 1] [-adversary random] [-max 40] [-crash p@t]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	renaming "repro"
	"repro/internal/shmem"
)

func main() {
	k := flag.Int("k", 6, "number of participating processes")
	seed := flag.Uint64("seed", 1, "coin seed (same seed+adversary ⇒ same execution)")
	advName := flag.String("adversary", "random", "roundrobin | random | sequential | anticoin | laggard | oscillator")
	maxLines := flag.Int("max", 40, "print at most this many trace lines (0 = all)")
	crash := flag.String("crash", "", "crash plan, e.g. 2@15,4@60 (process@clock)")
	flag.Parse()

	adv, err := pickAdversary(*advName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "renametrace:", err)
		os.Exit(2)
	}
	if *crash != "" {
		plan, err := parseCrash(*crash)
		if err != nil {
			fmt.Fprintln(os.Stderr, "renametrace:", err)
			os.Exit(2)
		}
		adv = renaming.CrashAt(adv, plan)
	}

	var lines int
	rt := renaming.NewSimTraced(*seed, adv, func(e renaming.TraceEvent) {
		lines++
		if *maxLines > 0 && lines > *maxLines {
			if lines == *maxLines+1 {
				fmt.Println("  ... (truncated; use -max 0 for everything)")
			}
			return
		}
		verb := e.Op.String()
		if e.Crash {
			verb = "CRASH"
		}
		fmt.Printf("  t=%-6d p%-3d %s\n", e.Clock, e.Proc, verb)
	})

	ren := renaming.NewRenaming(rt)
	names := make([]uint64, *k)
	fmt.Printf("strong adaptive renaming: k=%d seed=%d adversary=%s\n", *k, *seed, *advName)
	st := rt.Run(*k, func(p renaming.Proc) {
		names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
	})

	fmt.Printf("\n%d scheduling decisions total\n\n", lines)
	fmt.Println("proc  name  steps  reads  writes  cas  comparators  splitters  crashed")
	for i := range names {
		pc := st.PerProc[i]
		fmt.Printf("%4d  %4d  %5d  %5d  %6d  %3d  %11d  %9d  %v\n",
			i, names[i], pc.Steps(),
			pc.Ops[shmem.OpRead], pc.Ops[shmem.OpWrite], pc.Ops[shmem.OpCAS],
			pc.Events[shmem.EvComparator], pc.Events[shmem.EvSplitter],
			st.Crashed[i])
	}
}

func pickAdversary(name string, seed uint64) (renaming.Adversary, error) {
	switch name {
	case "roundrobin":
		return renaming.RoundRobin(), nil
	case "random":
		return renaming.RandomSchedule(seed), nil
	case "sequential":
		return renaming.Sequential(), nil
	case "anticoin":
		return renaming.AntiCoin(seed), nil
	case "laggard":
		return renaming.Laggard(0), nil
	case "oscillator":
		return renaming.Oscillator(8), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}

func parseCrash(s string) (map[int]uint64, error) {
	plan := make(map[int]uint64)
	for _, part := range strings.Split(s, ",") {
		pt := strings.SplitN(part, "@", 2)
		if len(pt) != 2 {
			return nil, fmt.Errorf("bad crash spec %q (want proc@clock)", part)
		}
		p, err := strconv.Atoi(pt[0])
		if err != nil {
			return nil, fmt.Errorf("bad process in %q: %v", part, err)
		}
		t, err := strconv.ParseUint(pt[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad clock in %q: %v", part, err)
		}
		plan[p] = t
	}
	return plan, nil
}
