// Command renameload drives the workload harness: it runs one catalog (or
// flag-adjusted) scenario — open- or closed-loop arrivals, rename/counter
// op mixes, k-process execution waves with churn and crash storms —
// against the sharded serving pools and reports per-phase latency
// quantiles, achieved-vs-offered rates, and sampled live contention.
//
// Two runtimes:
//
//   - the default native mode is the wall-clock load test: real goroutines
//     against real pools, latency in nanoseconds, open-loop lateness
//     accounted so coordinated omission cannot hide stalls;
//   - -runtime sim runs the same scenario on the deterministic simulator:
//     latency becomes step complexity and the whole report is a pure
//     function of (seed, scenario). The command runs the scenario twice
//     and fails unless the two runs are bit-identical modulo the elapsed
//     wall time — every sim report is its own replay proof.
//
// The process exits non-zero unless the report verdict is "ok", so CI can
// gate on it directly.
//
// Usage:
//
// With -addr the generators drive a renameserve wire server instead of
// in-process pools: the same scenarios, the same scheduled-arrival latency
// accounting, but every operation crosses the batched binary wire protocol.
// With -ring they drive a whole renameserve cluster: operations route by
// key over the ring file's nodes and rename replies come back as
// cluster-wide names. Both are native-runtime only, and both refuse an
// explicit -faults plan (fault plans arm in-process wave processes and do
// not travel over the wire; a scenario's own catalog plan is stripped with
// a note). -deadline arms a per-batch server-side budget; servers running
// admission control shed late batches typed and retryable, counted in the
// report's sheds field without failing the verdict. -trace N arms
// end-to-end tracing: every frame carries a trace id whose reply echoes
// the server's stage decomposition (reported as the stages row under the
// latency table), sampled ids record spans at every hop, and after the run
// the N slowest client-side chains print with their per-hop breakdown
// (the same trace ids index the server-side spans on each node's /trace
// endpoint).
//
// Usage:
//
//	renameload -list
//	renameload [-scenario churn] [-rate R] [-duration D] [-workers N]
//	           [-ops N] [-seed S] [-faults 1@8,3@20|none] [-runtime sim]
//	           [-addr host:port | -ring ring.txt] [-deadline D] [-trace N]
//	           [-json] [-gobench]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	renaming "repro"
)

func main() {
	scenario := flag.String("scenario", "steady", "catalog scenario to run (see -list)")
	list := flag.Bool("list", false, "list the scenario catalog and exit")
	runtimeName := flag.String("runtime", "native", "native (wall-clock load) | sim (deterministic replay)")
	rate := flag.Float64("rate", 0, "override the offered rate in ops/sec (scales Peak by the same factor)")
	duration := flag.Duration("duration", 0, "override the scenario duration")
	workers := flag.Int("workers", 0, "override the generator goroutine count")
	ops := flag.Uint64("ops", 0, "override the op budget (sim mode: the exact budget)")
	seed := flag.Uint64("seed", 0, "override the scenario seed (sim mode: the replay seed)")
	faults := flag.String("faults", "", "override the fault plan: p@s,p@s crashes process p after s completed steps of each wave; 'none' disarms the scenario's plan (explicit plans are incompatible with -addr/-ring: usage error)")
	addr := flag.String("addr", "", "drive a renameserve wire server at this address instead of in-process pools (native runtime only)")
	ringPath := flag.String("ring", "", "drive a renameserve cluster described by this ring file, routing ops by key across its nodes (native runtime only)")
	deadline := flag.Duration("deadline", 0, "per-batch server-side processing budget over -addr/-ring (0 = none); with server admission control, also bounds how long a queued op may wait before it is shed")
	traceK := flag.Int("trace", 0, "arm end-to-end tracing over -addr/-ring and print the N slowest traced chains with their per-hop spans after the run; every frame then carries a stage echo (the report's stages row) and 1-in-64 trace ids record spans")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	gobench := flag.Bool("gobench", false, "emit one go-bench-style result line (scripts/bench.sh folds these into BENCH_<n>.json)")
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %s\n", "scenario", "description")
		for _, s := range renaming.LoadCatalog() {
			fmt.Printf("%-12s %s\n", s.Name, s.Note)
		}
		return
	}

	s, ok := renaming.FindScenario(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "renameload: unknown scenario %q; available:", *scenario)
		for _, c := range renaming.LoadCatalog() {
			fmt.Fprintf(os.Stderr, " %s", c.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	if *rate > 0 {
		if s.Arrival.Rate > 0 && s.Arrival.Peak > 0 {
			s.Arrival.Peak *= *rate / s.Arrival.Rate // keep the burst/ramp shape
		}
		s.Arrival.Rate = *rate
	}
	if *duration > 0 {
		s.Duration = *duration
	}
	if *workers > 0 {
		s.Workers = *workers
	}
	if *ops > 0 {
		s.Ops = *ops
	}
	if *seed > 0 {
		s.Seed = *seed
	}
	switch {
	case *faults == "none":
		s.Faults = nil
	case *faults != "":
		plan, err := parseFaults(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "renameload:", err)
			os.Exit(2)
		}
		s.Faults = plan
	}

	remote := *addr != "" || *ringPath != ""
	var r *renaming.LoadReport
	switch {
	case *addr != "" && *ringPath != "":
		fmt.Fprintln(os.Stderr, "renameload: -addr and -ring are mutually exclusive (one server or one cluster, not both)")
		os.Exit(2)
	case remote && *runtimeName != "native":
		fmt.Fprintln(os.Stderr, "renameload: -addr/-ring drive live servers and need the native runtime (drop -runtime sim)")
		os.Exit(2)
	case remote && *faults != "" && *faults != "none":
		// An explicit plan over the wire is a contradiction, not a
		// preference: fault plans arm in-process wave processes, and
		// silently dropping what the user asked for would misreport the
		// run. (-faults none still works — it disarms the scenario's own
		// plan; catalog-armed plans are stripped with a note below.)
		fmt.Fprintln(os.Stderr, "renameload: -faults cannot combine with -addr/-ring: fault plans arm in-process wave processes and do not travel over the wire (use -faults none to disarm a scenario's own plan)")
		os.Exit(2)
	case *traceK > 0 && !remote:
		fmt.Fprintln(os.Stderr, "renameload: -trace follows operations across the wire and needs -addr or -ring (in-process runs have no hops to trace)")
		os.Exit(2)
	case remote:
		if s.Faults != nil {
			fmt.Fprintln(os.Stderr, "renameload: note: fault plans do not travel over the wire; remote waves run fault-free")
			s.Faults = nil
		}
		var col *renaming.TraceCollector
		if *traceK > 0 {
			col = renaming.NewTraceCollector()
			col.Arm(64)
			defer col.Close()
		}
		var rem renaming.RemoteTransport
		if *ringPath != "" {
			ring, err := renaming.LoadClusterRing(*ringPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "renameload:", err)
				os.Exit(2)
			}
			c, err := renaming.DialCluster(ring, 5*time.Second)
			if err != nil {
				fmt.Fprintln(os.Stderr, "renameload:", err)
				os.Exit(1)
			}
			defer c.Close()
			c.SetOpDeadline(*deadline)
			if col != nil {
				c.SetTrace(col)
			}
			rem = c
		} else {
			c, err := renaming.DialWire(*addr, 5*time.Second)
			if err != nil {
				fmt.Fprintln(os.Stderr, "renameload:", err)
				os.Exit(1)
			}
			defer c.Close()
			c.SetOpDeadline(*deadline)
			if col != nil {
				c.SetTrace(col, -1)
			}
			rem = c
		}
		r = renaming.RunScenarioRemote(s, rem)
		if col != nil {
			// Chains go to stderr so -json consumers still read a clean
			// report from stdout.
			col.Fold()
			fmt.Fprintf(os.Stderr, "slowest traced chains (client side; server-side spans for the same trace ids are on each node's /trace):\n")
			col.WriteChains(os.Stderr, *traceK, renaming.WireOpName)
		}
	case *runtimeName == "native":
		r = renaming.RunScenario(s, nil)
	case *runtimeName == "sim":
		// Runs twice; the report's verdict fails unless the runs match
		// bit-for-bit modulo wall clock — the determinism contract.
		r, _ = renaming.SimReplayMatches(s, s.Seed)
	default:
		fmt.Fprintf(os.Stderr, "renameload: unknown -runtime %q (native | sim)\n", *runtimeName)
		os.Exit(2)
	}

	switch {
	case *gobench:
		fmt.Println(r.GoBenchRow())
	case *jsonOut:
		os.Stdout.Write(r.JSON())
	default:
		r.Fprint(os.Stdout)
	}
	if r.Verdict != "ok" {
		fmt.Fprintf(os.Stderr, "renameload: verdict: %s\n", r.Verdict)
		os.Exit(1)
	}
}

// parseFaults parses "p@s,p@s" into a fault plan (same syntax as
// renametrace -crash).
func parseFaults(spec string) (*renaming.FaultPlan, error) {
	plan := renaming.NewFaultPlan()
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ps, ss, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("bad -faults entry %q (want p@s)", part)
		}
		p, err := strconv.Atoi(ps)
		if err != nil || p < 0 {
			return nil, fmt.Errorf("bad process id in -faults entry %q", part)
		}
		step, err := strconv.ParseUint(ss, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad step count in -faults entry %q", part)
		}
		plan.CrashAt(p, step)
	}
	return plan, nil
}
