// Command renameserve runs the networked serving tier: the batched binary
// wire protocol (internal/wire) served over TCP against the sharded
// serving pools (internal/serve, internal/phase). cmd/renameload -addr
// drives it with the full scenario catalog; any connection that starts
// with "GET " receives a plain-text metrics dump (pool in-flight and retry
// gauges, phased-counter mode, merged op-latency quantiles), so
//
//	curl http://<addr>/metrics
//
// works against the same port the wire protocol is served on.
//
// The process stops on SIGINT/SIGTERM: the listener and all open
// connections close, in-flight batches are abandoned (clients see their
// typed drop error), and the final metrics dump is printed.
//
// Usage:
//
//	renameserve [-addr 127.0.0.1:7411] [-seed S] [-quiet]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	renaming "repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "TCP listen address")
	seed := flag.Uint64("seed", 1, "pool seed (derives every instance's coin streams)")
	quiet := flag.Bool("quiet", false, "skip the metrics dump on shutdown")
	flag.Parse()

	srv, err := renaming.ListenWire(*addr, renaming.NewLoadTarget(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "renameserve:", err)
		os.Exit(1)
	}
	fmt.Printf("renameserve: listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	if !*quiet {
		fmt.Print(srv.MetricsText())
	}
}
