// Command renameserve runs the networked serving tier: the batched binary
// wire protocol (internal/wire) served over TCP against the sharded
// serving pools (internal/serve, internal/phase). cmd/renameload -addr
// drives it with the full scenario catalog; any connection that opens with
// an HTTP method is routed to the observability surface on the same port
// the wire protocol is served on:
//
//	curl http://<addr>/metrics          # gauges, counters, op-latency histograms
//	curl http://<addr>/trace            # recent trace spans + slowest-op exemplars
//	curl http://<addr>/debug/pprof/heap # runtime profiles (also profile, goroutine)
//
// /metrics carries pool in-flight and retry gauges, phased-counter mode,
// admission shed counters, merged per-op latency quantiles and cumulative
// histogram buckets with slowest-op trace-id exemplars; /trace emits the
// server-side spans recorded for sampled traced batches (renameload
// -trace arms the client side).
//
// With -ring the process serves one node of a cluster: the ring file
// (one "id addr base span" line per node) names every node's address and
// disjoint cluster name range, and -node selects which line this process
// is. The server itself is unchanged — cluster names are client-side
// arithmetic (cmd/renameload -ring) — so -ring only picks the listen
// address and prints the owned range.
//
// -admit arms admission control: at most N concurrently-executing ops per
// gate shard, a bounded wait queue behind them, and shed-on-deadline for
// ops that cannot be admitted within their batch's budget (clients see the
// typed retryable EShed; netserve_shed_total counts them).
//
// The process stops on SIGINT/SIGTERM: the listener and all open
// connections close, in-flight batches are abandoned (clients see their
// typed drop error), and the final metrics dump is printed.
//
// Usage:
//
//	renameserve [-addr 127.0.0.1:7411] [-seed S] [-quiet]
//	            [-ring ring.txt -node i]
//	            [-admit N] [-admit-queue N] [-admit-wait D]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	renaming "repro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "TCP listen address (superseded by -ring)")
	ringPath := flag.String("ring", "", "cluster ring file (one \"id addr base span\" line per node); serve the node selected by -node")
	node := flag.Int("node", 0, "this process's node id in the -ring file")
	admit := flag.Int("admit", 0, "admission control: max concurrently-executing ops per gate shard (0 = off)")
	admitShards := flag.Int("admit-shards", 0, "admission control: gate shard count (default 16; 1 = one strict global bound)")
	admitQueue := flag.Int("admit-queue", 0, "admission control: waiters per gate before shedding (default 2×-admit)")
	admitWait := flag.Duration("admit-wait", 0, "admission control: max queue wait for ops whose batch carries no deadline (default 1ms)")
	seed := flag.Uint64("seed", 1, "pool seed (derives every instance's coin streams)")
	quiet := flag.Bool("quiet", false, "skip the metrics dump on shutdown")
	flag.Parse()

	// NodeID -1 = standalone (no node attribution on trace spans); a -ring
	// node stamps its ring id on every span it records, which is what lets
	// a cross-node trace chain name the hop that hurt.
	opts := renaming.WireOptions{Admission: renaming.WireAdmissionConfig{
		PerShard: *admit,
		Shards:   *admitShards,
		Queue:    *admitQueue,
		MaxWait:  *admitWait,
	}, NodeID: -1}

	listenAddr := *addr
	var nd *renaming.ClusterNode
	if *ringPath != "" {
		ring, err := renaming.LoadClusterRing(*ringPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "renameserve:", err)
			os.Exit(2)
		}
		if *node < 0 || *node >= ring.Len() {
			fmt.Fprintf(os.Stderr, "renameserve: -node %d out of range (ring has nodes 0..%d)\n", *node, ring.Len()-1)
			os.Exit(2)
		}
		n := ring.Node(*node)
		nd = &n
		listenAddr = n.Addr
		opts.NodeID = n.ID
	}

	srv, err := renaming.ListenWireOpts(listenAddr, renaming.NewLoadTarget(*seed), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "renameserve:", err)
		os.Exit(1)
	}
	if nd != nil {
		fmt.Printf("renameserve: node %d listening on %s, serving cluster names %s\n", nd.ID, srv.Addr(), nd.Range())
	} else {
		fmt.Printf("renameserve: listening on %s\n", srv.Addr())
	}
	if *admit > 0 {
		fmt.Printf("renameserve: admission control on (%d per gate shard)\n", *admit)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	if !*quiet {
		fmt.Print(srv.MetricsText())
	}
}
