// Command netcheck verifies the sorting-network substrate: it validates
// structure, checks the zero-one principle (exhaustively for small widths,
// by sampling otherwise), prints depth/size summaries for each generator,
// and shows the adaptive construction's level table and the BitBatching
// batch layout.
//
// Usage:
//
//	netcheck [-width N] [-trials T] [-layout N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sortnet"
)

func main() {
	width := flag.Int("width", 16, "network width to verify")
	trials := flag.Int("trials", 2000, "random zero-one trials for widths beyond exhaustive reach")
	layout := flag.Int("layout", 0, "also print the BitBatching batch layout for this n")
	draw := flag.Int("draw", 0, "draw the Batcher network of this width as a wire diagram")
	flag.Parse()

	if *draw > 0 {
		fmt.Printf("Batcher odd-even mergesort, width %d:\n\n%s\n", *draw,
			sortnet.Draw(sortnet.OddEvenMergeNet(*draw)))
	}

	ok := true
	gens := []struct {
		name string
		net  *sortnet.Network
	}{
		{"insertion", sortnet.Insertion(*width)},
		{"odd-even transposition", sortnet.OddEvenTransposition(*width)},
		{"Batcher odd-even merge", sortnet.OddEvenMergeNet(*width)},
	}
	for _, g := range gens {
		if err := g.net.Validate(); err != nil {
			fmt.Printf("%-24s INVALID: %v\n", g.name, err)
			ok = false
			continue
		}
		verdict := verify(g.net, *trials)
		fmt.Printf("%-24s width=%-5d depth=%-4d size=%-6d %s\n",
			g.name, g.net.W, g.net.Depth(), g.net.Size(), verdict)
		if verdict != "sorts (exhaustive)" && verdict != "sorts (sampled)" {
			ok = false
		}
	}

	fmt.Println("\nadaptive construction (Section 6.1, Batcher base):")
	ad := sortnet.NewAdaptive(sortnet.MaxAdaptiveWire)
	fmt.Printf("  levels=%d  total width=%d  total depth=%d\n", ad.Levels(), ad.Width(), ad.Depth())
	for i := 1; i <= ad.Levels(); i++ {
		fmt.Printf("  level %d: depth(S_%d)=%d\n", i, i, ad.DepthOfLevel(i))
	}
	small := sortnet.NewAdaptive(15)
	if bad := small.Flatten().VerifyZeroOne(); bad != nil {
		fmt.Printf("  FLATTENED S (width 16) FAILS on %v\n", bad)
		ok = false
	} else {
		fmt.Println("  flattened S (width 16) sorts (exhaustive)")
	}

	if *layout > 0 {
		fmt.Printf("\nBitBatching layout for n=%d (Figure 1):\n", *layout)
		for i, b := range core.BatchLayout(*layout) {
			fmt.Printf("  batch %d: slots [%d, %d) length %d\n", i+1, b.Lo, b.Hi, b.Len())
		}
	}

	if !ok {
		os.Exit(1)
	}
}

func verify(net *sortnet.Network, trials int) string {
	if net.W <= 20 {
		if bad := net.VerifyZeroOne(); bad != nil {
			return fmt.Sprintf("FAILS on %v", bad)
		}
		return "sorts (exhaustive)"
	}
	g := rng.New(1)
	if bad := net.SampleZeroOne(trials, g.Next); bad != nil {
		return fmt.Sprintf("FAILS on %v", bad)
	}
	return "sorts (sampled)"
}
