// Command renamebench regenerates the experiment tables (E1–E17, see
// BENCHMARKS.md): each table reproduces a claim of "Optimal-Time Adaptive
// Strong Renaming, with Applications to Counting" (PODC 2011) on the
// deterministic simulator.
//
// Usage:
//
//	renamebench [-quick] [-seeds N] [-table E8] [-markdown]
//	renamebench -parallel G        # wall-clock serving-throughput table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast smoke run")
	seeds := flag.Int("seeds", 10, "independent runs per parameter point")
	fresh := flag.Bool("fresh", false, "rebuild the object graph for every seed instead of resetting one instantiation (comparison knob; results are bit-identical)")
	table := flag.String("table", "", "run only the experiment with this ID (e.g. E8)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	csv := flag.Bool("csv", false, "emit CSV series for external plotting")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document per run (see scripts/bench.sh)")
	parallel := flag.Int("parallel", 0, "measure serving throughput instead of the E-tables: sweep 1..G goroutines against sharded pools (wall-clock, native runtime)")
	loadTable := flag.Bool("load", false, "run the workload-harness table instead of the E-tables: every catalog scenario for one -window against the native pools (see also cmd/renameload)")
	window := flag.Duration("window", 0, "measurement window per throughput cell (with -parallel; default 100ms) or per scenario (with -load; default 2s — low-rate scenarios need time to arrive)")
	flag.Parse()

	if *jsonOut && (*markdown || *csv) {
		fmt.Fprintln(os.Stderr, "renamebench: -json cannot be combined with -markdown or -csv")
		os.Exit(2)
	}
	if *parallel > 0 && *loadTable {
		fmt.Fprintln(os.Stderr, "renamebench: -parallel and -load are mutually exclusive")
		os.Exit(2)
	}

	cfg := bench.Config{Seeds: *seeds, Quick: *quick, Fresh: *fresh}
	var tables []*bench.Table
	switch {
	case *parallel > 0:
		tables = []*bench.Table{bench.Throughput(*parallel, *window)}
	case *loadTable:
		tables = []*bench.Table{bench.LoadTable(*window)}
	default:
		tables = bench.All(cfg)
	}

	matched := false
	var selected []*bench.Table
	for _, t := range tables {
		if *table != "" && !strings.EqualFold(t.ID, *table) {
			continue
		}
		matched = true
		selected = append(selected, t)
		if *jsonOut {
			continue // emitted as one document after the loop
		}
		switch {
		case *csv:
			t.CSV(os.Stdout)
		case *markdown:
			t.Markdown(os.Stdout)
		default:
			t.Fprint(os.Stdout)
		}
	}
	if matched && *jsonOut {
		if err := bench.JSONTables(os.Stdout, selected); err != nil {
			fmt.Fprintln(os.Stderr, "renamebench:", err)
			os.Exit(1)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "renamebench: no experiment with ID %q; available:", *table)
		for _, t := range tables {
			fmt.Fprintf(os.Stderr, " %s", t.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
