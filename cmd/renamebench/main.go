// Command renamebench regenerates the experiment tables of EXPERIMENTS.md:
// one table per entry of the per-experiment index in DESIGN.md, each
// reproducing a claim of "Optimal-Time Adaptive Strong Renaming, with
// Applications to Counting" (PODC 2011) on the deterministic simulator.
//
// Usage:
//
//	renamebench [-quick] [-seeds N] [-table E8] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast smoke run")
	seeds := flag.Int("seeds", 10, "independent runs per parameter point")
	table := flag.String("table", "", "run only the experiment with this ID (e.g. E8)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown (EXPERIMENTS.md format)")
	csv := flag.Bool("csv", false, "emit CSV series for external plotting")
	flag.Parse()

	cfg := bench.Config{Seeds: *seeds, Quick: *quick}
	tables := bench.All(cfg)

	matched := false
	for _, t := range tables {
		if *table != "" && !strings.EqualFold(t.ID, *table) {
			continue
		}
		matched = true
		switch {
		case *csv:
			t.CSV(os.Stdout)
		case *markdown:
			t.Markdown(os.Stdout)
		default:
			t.Fprint(os.Stdout)
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "renamebench: no experiment with ID %q; available:", *table)
		for _, t := range tables {
			fmt.Fprintf(os.Stderr, " %s", t.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
}
