package renaming

import (
	"repro/internal/exec"
	"repro/internal/shmem"
	"repro/internal/sim"
	"time"
)

// This file is the facade over internal/exec, the unified execution layer:
// runtime-agnostic orchestration of k-process executions with fault
// injection and deterministic trace record/replay on both runtimes. See
// doc.go ("The execution layer") for the model and BENCHMARKS.md for the
// armed-vs-disarmed hook cost.

type (
	// Execution orchestrates repeated k-process executions on one runtime,
	// with optional fault injection (Faults) and trace recording (Record).
	Execution = exec.Execution
	// FaultPlan is a runtime-agnostic failure schedule: crash-at-step,
	// stall windows, and dynamic pausing, armed via Execution.Faults on
	// either runtime.
	FaultPlan = exec.FaultPlan
	// Stall is one stall window of a FaultPlan.
	Stall = exec.Stall
	// EventLog is the trace of one recorded execution: scheduling decisions
	// in a global total order with per-process sequence numbers, plus
	// operation-level marks.
	EventLog = exec.EventLog
	// ExecEvent is one recorded trace entry.
	ExecEvent = exec.Event
	// StepHook is the native runtime's step-path hook interface; the
	// execution layer provides the implementations (fault injection,
	// recording). Hook dispatch is type-based: armed executions run behind
	// a wrapping proc type, so the disarmed step path is unchanged.
	StepHook = shmem.StepHook
)

// Event kinds and mark tags of recorded traces.
const (
	EvStep  = exec.EvStep
	EvCrash = exec.EvCrash
	EvMark  = exec.EvMark
)

// NewExecution returns an execution context for k-process runs on rt (the
// native runtime or the simulator; both support the full fault/record
// feature set).
//
//	rt := renaming.NewNative(42)
//	ex := renaming.NewExecution(rt, 8)
//	ex.Faults(renaming.NewFaultPlan().CrashAt(3, 100))
//	log := ex.Record()
//	ren := renaming.NewRenaming(rt)
//	st := ex.Run(func(p renaming.Proc) {
//	    ex.MarkName(p, ren.Rename(p, uint64(p.ID())+1))
//	})
//	err := renaming.CheckRenamingTrace(log) // survivors unique in [1..k]
//	sim := renaming.Replay(log)             // deterministic re-execution
func NewExecution(rt Runtime, k int) *Execution {
	return exec.New(rt, k)
}

// NewFaultPlan returns an empty fault plan; chain CrashAt/StallAt and use
// Pause/Resume for live chaos control.
func NewFaultPlan() *FaultPlan { return exec.NewFaultPlan() }

// CrashAtStep is a one-call plan crashing each listed process when it is
// about to take the step after the given number of completed steps — the
// runtime-agnostic successor of CrashAt (which remains the simulator-only,
// global-clock form).
func CrashAtStep(at map[int]uint64) *FaultPlan {
	plan := exec.NewFaultPlan()
	for p, s := range at {
		plan.CrashAt(p, s)
	}
	return plan
}

// StallAt is a one-call plan stalling process proc at the given
// completed-step count: forSteps global steps on the simulator, wall
// wall-clock time on the native runtime.
func StallAt(proc int, step, forSteps uint64, wall time.Duration) *FaultPlan {
	return exec.NewFaultPlan().StallAt(proc, step, forSteps, wall)
}

// Replay returns a fresh simulator re-executing a recorded log: the
// recorded seed re-derives every coin stream and the recorded schedule is
// forced via a trace adversary, so running the same body against a
// same-shaped object graph reproduces the recorded execution bit for bit —
// also when the log was recorded on the native runtime.
func Replay(log *EventLog) *SimRuntime { return exec.Replay(log) }

// FromTrace returns an adversary that forces an explicit schedule (the
// low-level half of Replay, for runs that need their own runtime options).
func FromTrace(log *EventLog) Adversary { return sim.FromTrace(log.Schedule()) }

// CheckRenamingTrace verifies the strong renaming contract over a recorded
// execution (names via Execution.MarkName): survivors' names are distinct,
// tight ({1..k}) when crash-free, within [1..k] under crashes.
func CheckRenamingTrace(log *EventLog) error { return exec.CheckRenamingTrace(log) }

// CheckCounterTrace verifies monotone consistency (Lemma 4) over a
// recorded counter execution (operations bracketed via
// MarkIncStart/MarkIncEnd/MarkReadStart/MarkRead).
func CheckCounterTrace(log *EventLog) error { return exec.CheckCounterTrace(log) }
