// Loadtest: a burst + crash-storm scenario from the workload catalog run
// against a rename pool — the workload harness as a library.
//
// The "crashstorm" catalog scenario fires k-process renaming waves at a
// square-wave rate (low/high alternating) while a four-process crash storm
// is armed on every wave through the execution layer: processes 0, 2, 4
// and 6 die at staggered points of their own step sequences, mid-wave,
// under real concurrency. The per-phase latency table shows what the
// square wave does to the tail (latency is measured open-loop, from each
// wave's *scheduled* launch, so waves queued behind a slow phase count
// against it), and the crash column shows the storm actually firing.
package main

import (
	"fmt"
	"os"
	"time"

	renaming "repro"
)

func main() {
	s, ok := renaming.FindScenario("crashstorm")
	if !ok {
		panic("catalog scenario crashstorm missing")
	}
	// Shrink the catalog defaults to a quick demo: 3s of load, with the
	// burst period compressed so both phases repeat a few times.
	s.Duration = 3 * time.Second
	s.Arrival.Period = 300 * time.Millisecond

	fmt.Printf("running %q for %v: %s\n", s.Name, s.Duration, s.Note)
	fmt.Printf("fault plan: %d crash entries armed per wave\n\n", s.Faults.Crashes())

	r := renaming.RunScenario(s, renaming.NewLoadTarget(s.Seed))
	r.Fprint(os.Stdout)

	if r.Verdict != "ok" {
		panic("load report verdict: " + r.Verdict)
	}
	if r.Waves == 0 {
		panic("no waves completed")
	}
	if r.Crashes == 0 {
		panic("the crash storm never fired")
	}
	fmt.Printf("\n%d waves served under a crash storm (%d injected crashes, peak live k %d); every wave's survivors renamed into [1..k]\n",
		r.Waves, r.Crashes, r.KPeak)
}
