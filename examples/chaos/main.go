// Chaos: crash-injected executions on the native runtime — the regime the
// paper's wait-freedom guarantees are about, exercised on real goroutines
// through the unified execution layer instead of only under simulation.
//
// Waves of k-process strong-renaming executions run with a different crash
// plan each wave (a third of the processes die at pseudo-random points of
// their own step sequence). Every wave is recorded; the trace checker
// verifies the survivors' names are distinct and within [1..k], and the
// recorded schedule is then replayed bit-identically on the deterministic
// simulator — so every hardware interleaving this program produces, crashes
// included, ends up a reproducible artifact.
package main

import (
	"fmt"

	renaming "repro"
	"repro/internal/rng"
)

func main() {
	const (
		k     = 8
		waves = 12
	)
	bp := renaming.CompileRenaming()
	coins := rng.New(2026)

	crashesTotal, replaysOK := 0, 0
	for wave := 0; wave < waves; wave++ {
		// Each wave gets its own runtime seed (its own coin streams) and its
		// own crash plan: every third process dies after a pseudo-random
		// number of its own steps.
		seed := uint64(1000 + wave)
		rt := renaming.NewNative(seed)
		ex := renaming.NewExecution(rt, k)
		plan := renaming.NewFaultPlan()
		planned := 0
		for p := wave % 3; p < k; p += 3 {
			plan.CrashAt(p, coins.Uint64n(40))
			planned++
		}
		ex.Faults(plan)
		log := ex.Record()

		ren := bp.Instantiate(rt)
		names := make([]uint64, k)
		st := ex.Run(func(p renaming.Proc) {
			n := ren.Rename(p, uint64(p.ID())+1)
			names[p.ID()] = n
			ex.MarkName(p, n)
		})

		if err := renaming.CheckRenamingTrace(log); err != nil {
			panic(fmt.Sprintf("wave %d: survivors' names invalid: %v", wave, err))
		}
		// A plan entry fires only if the process is still running when it
		// reaches the step — a fast rename can finish first, so fired ≤
		// planned.
		crashed := 0
		for p := 0; p < k; p++ {
			if st.Crashed[p] {
				crashed++
			}
		}
		if crashed > planned {
			panic(fmt.Sprintf("wave %d: %d crashes planned, %d fired", wave, planned, crashed))
		}
		crashesTotal += crashed

		// Replay the recorded schedule on the simulator and re-check: the
		// survivors must end up with the same names.
		srt := renaming.Replay(log)
		sren := bp.Instantiate(srt)
		renames := make([]uint64, k)
		srt.Run(k, func(p renaming.Proc) {
			renames[p.ID()] = sren.Rename(p, uint64(p.ID())+1)
		})
		match := true
		for p := 0; p < k; p++ {
			if !st.Crashed[p] && renames[p] != names[p] {
				match = false
			}
		}
		if !match {
			panic(fmt.Sprintf("wave %d: sim replay diverged from the native recording", wave))
		}
		replaysOK++

		fmt.Printf("wave %2d: %d/%d crashed, %d survivors renamed into [1..%d], replayed ✓ (%d decisions)\n",
			wave, crashed, k, k-crashed, k, log.Decisions())
	}
	fmt.Printf("\n%d waves: %d injected crashes, every survivor set valid, %d/%d native traces replayed bit-identically on the simulator\n",
		waves, crashesTotal, replaysOK, waves)
}
