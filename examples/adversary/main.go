// Adversary: the research-facing workflow. The paper's model is an
// asynchronous system where a strong adaptive adversary picks the schedule
// and the failures; this example runs the same renaming workload under
// five adversaries (plus a crash plan), shows that safety — names exactly
// 1..k — holds under all of them while costs shift, and demonstrates
// deterministic replay: the same (seed, adversary) always yields the
// identical execution.
package main

import (
	"fmt"

	renaming "repro"
)

const k = 10

func run(adv renaming.Adversary, seed uint64) (names []uint64, steps uint64, crashed int) {
	rt := renaming.NewSim(seed, adv)
	ren := renaming.NewRenaming(rt)
	names = make([]uint64, k)
	st := rt.Run(k, func(p renaming.Proc) {
		names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
	})
	for i := range st.Crashed {
		if st.Crashed[i] {
			crashed++
		}
	}
	return names, st.TotalSteps(), crashed
}

func tight(names []uint64, skip int) bool {
	seen := map[uint64]bool{}
	for _, n := range names {
		if n < 1 || n > uint64(len(names)) || seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

func main() {
	const seed = 12
	schedules := []struct {
		name string
		mk   func() renaming.Adversary
	}{
		{"round-robin", func() renaming.Adversary { return renaming.RoundRobin() }},
		{"random", func() renaming.Adversary { return renaming.RandomSchedule(seed) }},
		{"sequential", func() renaming.Adversary { return renaming.Sequential() }},
		{"anti-coin", func() renaming.Adversary { return renaming.AntiCoin(seed) }},
		{"oscillator(8)", func() renaming.Adversary { return renaming.Oscillator(8) }},
	}

	fmt.Printf("strong adaptive renaming, k=%d, under adversarial schedules:\n\n", k)
	fmt.Println("schedule        totalSteps  tight(1..k)")
	for _, s := range schedules {
		names, steps, _ := run(s.mk(), seed)
		fmt.Printf("%-14s  %10d  %v\n", s.name, steps, tight(names, 0))
	}

	// Crash injection: processes 3 and 7 die mid-protocol; survivors must
	// still hold distinct names in 1..k (crashed processes count toward
	// contention — they took steps).
	adv := renaming.CrashAt(renaming.RandomSchedule(seed), map[int]uint64{3: 20, 7: 55})
	rt := renaming.NewSim(seed, adv)
	ren := renaming.NewRenaming(rt)
	names := make([]uint64, k)
	st := rt.Run(k, func(p renaming.Proc) {
		names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
	})
	fmt.Println("\nwith crash plan {p3@t=20, p7@t=55}:")
	for i, n := range names {
		status := ""
		if st.Crashed[i] {
			status = " (crashed mid-protocol)"
			continue
		}
		fmt.Printf("  p%-2d → name %2d%s\n", i, n, status)
	}

	// Deterministic replay: identical seeds and adversaries give identical
	// executions, step for step.
	n1, s1, _ := run(renaming.RandomSchedule(77), 77)
	n2, s2, _ := run(renaming.RandomSchedule(77), 77)
	fmt.Printf("\nreplay check: run A = %v (%d steps), run B identical: %v\n",
		n1, s1, equal(n1, n2) && s1 == s2)
}

func equal(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
