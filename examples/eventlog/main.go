// Eventlog: the Section 8.1 monotone-consistent counter as a high-frequency
// event sequencer. Producers stamp events by incrementing the counter;
// monitors read it to track progress. Monotone consistency is exactly the
// contract a progress gauge needs — reads never go backwards and always
// sit between completed and started increments — at O(log v) steps per
// operation instead of a linearizable counter's heavier synchronization.
package main

import (
	"fmt"
	"sync"

	renaming "repro"
)

func main() {
	const producers = 6
	const eventsEach = 25

	rt := renaming.NewNative(99)
	ctr := renaming.NewCounter(rt, renaming.WithHardwareTAS())

	var mu sync.Mutex
	var gauges [][]uint64 // per-monitor observed sequences

	rt.Run(producers+2, func(p renaming.Proc) {
		if p.ID() < producers {
			for e := 0; e < eventsEach; e++ {
				ctr.Inc(p)
			}
			return
		}
		// Monitors: poll the gauge and record what they see.
		var seen []uint64
		last := uint64(0)
		for last < producers*eventsEach {
			last = ctr.Read(p)
			seen = append(seen, last)
		}
		mu.Lock()
		gauges = append(gauges, seen)
		mu.Unlock()
	})

	fmt.Printf("%d producers emitted %d events total\n", producers, producers*eventsEach)
	for i, seen := range gauges {
		// Verify the monotone contract on each monitor's view.
		for j := 1; j < len(seen); j++ {
			if seen[j] < seen[j-1] {
				panic("gauge went backwards: monotone consistency violated")
			}
		}
		fmt.Printf("monitor %d: %d polls, first=%d last=%d, never decreased ✓\n",
			i, len(seen), seen[0], seen[len(seen)-1])
	}
}
