// Ticketing: the Section 8.2 objects as an admission-control pipeline.
// A flash-sale service has m=64 tickets. Each request calls the m-valued
// fetch-and-increment: values below m are ticket numbers (linearizable —
// no ticket is ever sold twice and numbering has no gaps); once the object
// saturates at m−1, the request is turned away. An ℓ-test-and-set
// separately grants a small number of "VIP" slots to the earliest
// requests, exactly ℓ of them, demonstrating Algorithm 1 on its own.
//
// Sales repeat, so the whole admission graph (dispenser + VIP gate) is
// served from renaming.NewPoolFunc: each sale checks a pre-instantiated
// graph out of the sharded pool and recycles it on return — the next sale
// starts from a fresh saturation-free dispenser with zero construction.
package main

import (
	"fmt"
	"sync/atomic"

	renaming "repro"
)

// sale is one flash sale's shared object graph: the pooled unit.
type sale struct {
	dispenser *renaming.FetchInc
	vip       *renaming.LTAS
}

// Reset recycles the graph between sales (the pool calls it on return).
func (s *sale) Reset() {
	s.dispenser.Reset()
	s.vip.Reset()
}

func main() {
	const (
		sales    = 2
		requests = 100
		tickets  = 64
		vipSlots = 5
	)

	pool := renaming.NewPoolFunc(func(mem renaming.Mem) *sale {
		return &sale{
			dispenser: renaming.NewFetchInc(mem, tickets, renaming.WithHardwareTAS()),
			vip:       renaming.NewLTAS(mem, vipSlots, renaming.WithHardwareTAS()),
		}
	}, renaming.WithPoolSeed(2026))

	for round := 0; round < sales; round++ {
		var sold, rejected, vips atomic.Int64
		issued := make([]atomic.Bool, tickets)

		pool.Execute(requests, func(p renaming.Proc, s *sale) {
			t := s.dispenser.Inc(p)
			switch {
			case t < tickets-1:
				if issued[t].Swap(true) {
					panic(fmt.Sprintf("ticket %d sold twice", t))
				}
				sold.Add(1)
			default:
				// m−1 is the saturation value: the (m−1)-th real ticket and
				// every overflow response share it; treat it as sold once.
				if !issued[t].Swap(true) {
					sold.Add(1)
				} else {
					rejected.Add(1)
				}
			}
			if s.vip.Try(p) {
				vips.Add(1)
			}
		})

		fmt.Printf("sale %d:\n", round+1)
		fmt.Printf("  requests:        %d\n", requests)
		fmt.Printf("  tickets sold:    %d (capacity %d)\n", sold.Load(), tickets)
		fmt.Printf("  turned away:     %d\n", rejected.Load())
		fmt.Printf("  VIP slots given: %d (exactly %d by Lemma 5)\n", vips.Load(), vipSlots)

		for t := 0; t < tickets; t++ {
			if !issued[t].Load() {
				panic(fmt.Sprintf("ticket %d never issued: numbering has a gap", t))
			}
		}
		fmt.Println("  ticket numbering dense 0..m−1, no duplicates ✓")
		if vips.Load() != vipSlots {
			panic("wrong number of VIP winners")
		}
	}

	st := pool.Stats()
	fmt.Printf("pool: %d instance(s) served %d sales (%d checkout hits, %d overflow builds)\n",
		st.Instances, sales, st.Hits, st.Overflows)
}
