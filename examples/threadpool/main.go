// Threadpool: the renaming problem of the paper's introduction in its most
// common systems guise — a dynamic pool of workers with large, sparse
// identities (here fake thread ids) that need small dense slot numbers to
// index per-worker state arrays (shards, stripes, per-CPU counters).
//
// Strong adaptive renaming hands worker i a slot in 1..k where k is the
// number of workers that actually showed up — no preconfigured pool size,
// no coordinator, and O(log k) shared-memory steps per worker.
//
// This version serves repeated waves of workers from renaming.NewPool, the
// sharded serving engine: each wave checks a pre-instantiated renamer
// graph out of the pool, runs its workers against it, and recycles it on
// return, so wave N+1 reuses wave N's graph with zero construction.
package main

import (
	"fmt"
	"sync/atomic"

	renaming "repro"
)

func main() {
	const (
		waves   = 3
		workers = 12
		jobs    = 480
	)

	pool := renaming.NewRenamingPool(renaming.WithPoolSeed(7))

	for wave := 0; wave < waves; wave++ {
		// Dense per-slot state, indexable only because names are tight.
		var perSlot [workers + 1]atomic.Uint64
		var queue atomic.Int64
		queue.Store(jobs)
		slots := make([]uint64, workers)

		// One serving request: a full renaming execution on a checked-out
		// graph. The pool recycles the instance afterward.
		pool.Execute(workers, func(p renaming.Proc, ren *renaming.StrongAdaptive) {
			// A "thread id" from a sparse 64-bit space.
			tid := uint64(p.ID())<<40 | 0xBEEF
			slot := ren.Rename(p, tid)
			slots[p.ID()] = slot

			// Work off the shared queue, accounting into the dense slot.
			for queue.Add(-1) >= 0 {
				perSlot[slot].Add(1)
			}
		})

		fmt.Printf("wave %d: %d workers renamed into slots 1..%d\n", wave+1, workers, workers)
		var total uint64
		for i, s := range slots {
			done := perSlot[s].Load()
			total += done
			if wave == 0 {
				fmt.Printf("  worker tid=%#x → slot %2d  processed %3d jobs\n",
					uint64(i)<<40|0xBEEF, s, done)
			}
			if s < 1 || s > workers {
				panic("slot out of the tight namespace")
			}
		}
		fmt.Printf("  jobs processed: %d / %d\n", total, jobs)
		if total != jobs {
			panic("jobs lost: dense slot accounting is broken")
		}
	}

	st := pool.Stats()
	fmt.Printf("pool: %d instance(s) served %d waves (%d checkout hits, %d overflow builds)\n",
		st.Instances, waves, st.Hits, st.Overflows)
}
