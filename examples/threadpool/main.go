// Threadpool: the renaming problem of the paper's introduction in its most
// common systems guise — a dynamic pool of workers with large, sparse
// identities (here fake thread ids) that need small dense slot numbers to
// index per-worker state arrays (shards, stripes, per-CPU counters).
//
// Strong adaptive renaming hands worker i a slot in 1..k where k is the
// number of workers that actually showed up — no preconfigured pool size,
// no coordinator, and O(log k) shared-memory steps per worker.
package main

import (
	"fmt"
	"sync/atomic"

	renaming "repro"
)

func main() {
	const workers = 12
	const jobs = 480

	rt := renaming.NewNative(7)
	ren := renaming.NewRenaming(rt, renaming.WithHardwareTAS())

	// Dense per-slot state, indexable only because names are tight.
	var perSlot [workers + 1]atomic.Uint64
	var queue atomic.Int64
	queue.Store(jobs)

	slots := make([]uint64, workers)
	rt.Run(workers, func(p renaming.Proc) {
		// A "thread id" from a sparse 64-bit space.
		tid := uint64(p.ID())<<40 | 0xBEEF
		slot := ren.Rename(p, tid)
		slots[p.ID()] = slot

		// Work off the shared queue, accounting into the dense slot.
		for queue.Add(-1) >= 0 {
			perSlot[slot].Add(1)
		}
	})

	fmt.Printf("%d workers renamed into slots 1..%d:\n", workers, workers)
	var total uint64
	for i, s := range slots {
		done := perSlot[s].Load()
		total += done
		fmt.Printf("  worker tid=%#x → slot %2d  processed %3d jobs\n",
			uint64(i)<<40|0xBEEF, s, done)
	}
	fmt.Printf("jobs processed: %d / %d\n", total, jobs)
	if total != jobs {
		panic("jobs lost: dense slot accounting is broken")
	}
}
