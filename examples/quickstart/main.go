// Quickstart: eight concurrent goroutines acquire tight names 1..8 through
// the paper's strong adaptive renaming algorithm, running on the native
// (real-goroutine) runtime.
package main

import (
	"fmt"
	"sort"

	renaming "repro"
)

func main() {
	rt := renaming.NewNative(42)
	ren := renaming.NewRenaming(rt, renaming.WithHardwareTAS())

	const k = 8
	names := make([]uint64, k)
	stats := rt.Run(k, func(p renaming.Proc) {
		// Each participant presents a unique id from a huge sparse
		// namespace; the algorithm compacts them to 1..k.
		initial := uint64(p.ID())*1_000_003 + 17
		names[p.ID()] = ren.Rename(p, initial)
	})

	fmt.Println("strong adaptive renaming, k =", k)
	for i, n := range names {
		fmt.Printf("  process %d  →  name %d\n", i, n)
	}

	sorted := append([]uint64(nil), names...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Println("namespace:", sorted, "(exactly 1..k — tight and adaptive)")
	fmt.Printf("total shared-memory steps: %d\n", stats.TotalSteps())
}
