package renaming

import (
	"net"
	"time"

	"repro/internal/load"
	"repro/internal/netserve"
	"repro/internal/wire"
)

// This file is the facade over internal/wire and internal/netserve, the
// networked serving tier: a batched, length-prefixed binary protocol
// carrying rename/counter/wave operations, a server mapping connections
// onto the sharded serving pools, and a pipelining client that keeps many
// batches in flight per connection. See doc.go ("Networked serving") for
// the model and BENCHMARKS.md ("The wire protocol") for the batch-size
// sweep; cmd/renameserve and renameload -addr are the CLI front ends.

type (
	// WireServer serves the wire protocol over one listener, mapping each
	// connection onto a LoadTarget's pools; a "GET " connection gets a
	// plain-text metrics dump instead.
	WireServer = netserve.Server
	// WireClient is the pipelining wire client: group-committed Do calls
	// and explicit WireBatches, many in flight per connection, correlated
	// by sequence number.
	WireClient = netserve.Client
	// WireBatch is an explicit operation batch (Send now, Wait later).
	WireBatch = netserve.Batch
	// WireOp identifies one operation kind on the wire.
	WireOp = wire.OpCode
	// WireError is a server-reported batch failure (the connection
	// survives).
	WireError = netserve.WireError
	// WireDroppedError reports a dropped connection's in-flight tail.
	WireDroppedError = netserve.DroppedError
	// RemoteTransport executes single operations against a remote serving
	// tier; WireClient implements it (RunScenarioRemote drives it).
	RemoteTransport = load.Remote
)

// Operation kinds of the wire protocol.
const (
	WireRename           = wire.OpRename
	WireInc              = wire.OpInc
	WireRead             = wire.OpRead
	WireWave             = wire.OpWave
	WirePhasedInc        = wire.OpPhasedInc
	WirePhasedRead       = wire.OpPhasedRead
	WirePhasedReadStrict = wire.OpPhasedReadStrict
)

// ListenWire listens on addr (TCP) and serves the wire protocol against
// tg's pools (nil builds a fresh NewLoadTarget(1)).
func ListenWire(addr string, tg *LoadTarget) (*WireServer, error) {
	return netserve.ListenAndServe(addr, tg)
}

// ServeWire serves the wire protocol on an existing listener.
func ServeWire(ln net.Listener, tg *LoadTarget) *WireServer {
	return netserve.NewServer(ln, tg)
}

// DialWire connects a pipelining client to a wire server, retrying for up
// to wait.
func DialWire(addr string, wait time.Duration) (*WireClient, error) {
	return netserve.Dial(addr, wait)
}

// RunScenarioRemote executes a scenario over a remote transport with the
// harness's scheduling and latency accounting unchanged — the wire
// counterpart of RunScenario. Failed remote operations fail the verdict.
func RunScenarioRemote(s Scenario, rem RemoteTransport) *LoadReport {
	return load.RunRemote(s, rem)
}

// RunScenarioWire dials a wire server, executes the scenario over the
// connection, and closes it. Fault plans are an in-process arming surface
// and do not travel over the wire; remote waves run fault-free.
func RunScenarioWire(s Scenario, addr string) (*LoadReport, error) {
	c, err := netserve.Dial(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return load.RunRemote(s, c), nil
}
