// Construction benchmarks: the other half of the construction-vs-execution
// split (bench_test.go holds the execution side). Three families:
//
//   - BenchmarkInstantiate*: compile-once + instantiate per iteration —
//     the cost of stamping shared state from a cached blueprint onto a
//     runtime (what a sharded server pays per shard).
//   - BenchmarkFreshBuild*: construct AND run per iteration — the
//     pre-two-phase behavior (what every execution used to pay). The ratio
//     FreshBuild / the matching execution benchmark in bench_test.go is
//     the amortization win recorded in BENCH_2.json.
//   - BenchmarkCompileCold: one uncached blueprint compilation, for the
//     construction-cost table in BENCHMARKS.md (cached compiles are a map
//     lookup and not worth timing).
package renaming_test

import (
	"fmt"
	"testing"

	renaming "repro"
	"repro/internal/sortnet"
)

// BenchmarkInstantiateStrongAdaptive measures blueprint instantiation of
// the headline renamer (shared adaptive network, fresh splitter tree and
// comparator table).
func BenchmarkInstantiateStrongAdaptive(b *testing.B) {
	bp := renaming.CompileRenaming()
	rt := renaming.NewSim(0, renaming.RandomSchedule(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Instantiate(rt)
	}
}

// BenchmarkInstantiateBitBatching measures instantiation of the n-slot
// vector (n RatRaces, the heaviest instantiation in the repository).
func BenchmarkInstantiateBitBatching(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			bp := renaming.CompileBitBatching(n)
			rt := renaming.NewSim(0, renaming.RandomSchedule(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bp.Instantiate(rt)
			}
		})
	}
}

// BenchmarkInstantiateCountingNetwork measures arena instantiation of
// Bitonic[w] from its cached wiring.
func BenchmarkInstantiateCountingNetwork(b *testing.B) {
	for _, w := range []int{16, 64} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			bp := renaming.CompileCountingNetwork(w)
			rt := renaming.NewSim(0, renaming.RandomSchedule(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bp.Instantiate(rt)
			}
		})
	}
}

// BenchmarkCompileCold measures one uncached blueprint compilation (the
// cost the process-wide caches amortize away): materializing and indexing
// Batcher's network at width M.
func BenchmarkCompileCold(b *testing.B) {
	for _, m := range []int{64, 256} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Bypass the caches deliberately: fresh materialization.
				sortnet.OddEvenMergeNet(m)
			}
		})
	}
}

// BenchmarkFreshBuildStrongAdaptive is the pre-two-phase behavior of
// BenchmarkStrongAdaptive: a fresh runtime and a fresh object graph per
// execution. Compare against BenchmarkStrongAdaptive (reset-many) for the
// amortization win.
func BenchmarkFreshBuildStrongAdaptive(b *testing.B) {
	for _, k := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt := renaming.NewSim(uint64(i), renaming.RandomSchedule(uint64(i)))
				sa := renaming.NewRenaming(rt)
				rt.Run(k, func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) })
			}
		})
	}
}

// BenchmarkFreshBuildBitBatching is the pre-two-phase behavior of
// BenchmarkBitBatching (construction dominated: n RatRaces per iteration).
func BenchmarkFreshBuildBitBatching(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt := renaming.NewSim(uint64(i), renaming.RandomSchedule(uint64(i)))
				bb := renaming.NewBitBatchingRenaming(rt, n)
				rt.Run(n, func(p renaming.Proc) { bb.Rename(p, uint64(p.ID())+1) })
			}
		})
	}
}

// BenchmarkFreshBuildNativeRenaming is the pre-two-phase behavior of
// BenchmarkNativeRenaming: a fresh runtime and graph per execution. The
// seed is pinned to the same value the reset-many benchmark uses (a
// native runtime cannot re-seed on reuse), so the pair differs only in
// construction — the ratio is the amortization win, not seed selection.
func BenchmarkFreshBuildNativeRenaming(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt := renaming.NewNative(1)
				sa := renaming.NewRenaming(rt, renaming.WithHardwareTAS())
				rt.Run(k, func(p renaming.Proc) {
					sa.Rename(p, uint64(p.ID())+1)
				})
			}
		})
	}
}
