// Phased-counting benchmarks (BENCH_6.json; see BENCHMARKS.md "Adaptive
// phase reconciliation").
//
// Two claims are pinned here:
//
//   - The split path wins at high contention: BenchmarkPhasedCounterThroughput
//     (auto mode, many goroutines) vs BenchmarkSharedAACIncThroughput (the
//     same spine hammered directly) — the headline ≥3× of the phased PR.
//     BenchmarkPhasedSplitThroughput / BenchmarkPhasedJoinedThroughput pin
//     the two modes separately, bracketing what the controller picks from.
//   - Joined mode costs nothing: BenchmarkPhasedIncJoined vs
//     BenchmarkAACIncSerial run the identical serial instruction stream
//     plus one atomic mode load — the A/B rows the ~2% budget is judged on
//     (measured in one `go test -bench` invocation, back to back on one
//     process, so they share thermal/layout conditions).
//
// All *Throughput rows force 8-way goroutine parallelism even at -cpu 1
// (b.SetParallelism): on a single-core host the contention the controller
// feeds on comes from scheduler preemption, not parallel cores.
package renaming_test

import (
	"sync/atomic"
	"testing"

	renaming "repro"
)

// phasedParallelism is the goroutine multiplier of the throughput rows:
// enough concurrent incrementers to contend the lanes and the spine
// regardless of GOMAXPROCS.
const phasedParallelism = 8

// BenchmarkPhasedCounterThroughput is the headline row: the served phased
// counter under its automatic hysteretic controller, many goroutines
// incrementing one shared counter.
func BenchmarkPhasedCounterThroughput(b *testing.B) {
	pool := renaming.NewPhasedCounterPool(renaming.WithPhasedSeed(1))
	b.ReportAllocs()
	b.SetParallelism(phasedParallelism)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool.Inc()
		}
	})
	reportPhaseStats(b, pool)
}

// BenchmarkPhasedJoinedThroughput pins the counter in joined mode: the
// AAC spine's own instruction stream behind the serving lanes — the lower
// bracket the controller escapes from under load.
func BenchmarkPhasedJoinedThroughput(b *testing.B) {
	pool := renaming.NewPhasedCounterPool(renaming.WithPhasedSeed(1),
		renaming.WithPhasePolicy(renaming.PhasePinJoined))
	b.ReportAllocs()
	b.SetParallelism(phasedParallelism)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool.Inc()
		}
	})
	reportPhaseStats(b, pool)
}

// BenchmarkPhasedSplitThroughput pins split mode: padded cell fetch-adds
// with epoch-amortized merges — the upper bracket.
func BenchmarkPhasedSplitThroughput(b *testing.B) {
	pool := renaming.NewPhasedCounterPool(renaming.WithPhasedSeed(1),
		renaming.WithPhasePolicy(renaming.PhasePinSplit))
	b.ReportAllocs()
	b.SetParallelism(phasedParallelism)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool.Inc()
		}
	})
	reportPhaseStats(b, pool)
}

// BenchmarkSharedAACIncThroughput is the baseline the ≥3× claim is judged
// against: the same linearizable AAC counter, hammered directly by the
// same goroutine population (per-goroutine process ids, no pool, no
// phases) — the high-contention increment path as it stood before this
// change.
func BenchmarkSharedAACIncThroughput(b *testing.B) {
	rt := renaming.NewNative(1).(*renaming.Native)
	c := renaming.NewLinearizableCounter(rt, 64)
	var ids atomic.Uint64
	b.ReportAllocs()
	b.SetParallelism(phasedParallelism)
	b.RunParallel(func(pb *testing.PB) {
		p := rt.NewProc(int(ids.Add(1)-1) % 64)
		for pb.Next() {
			c.Inc(p)
		}
	})
}

// BenchmarkPhasedIncJoined is the serial A/B leg: a bare phased counter in
// joined mode — the spine's increment plus exactly one atomic mode load.
func BenchmarkPhasedIncJoined(b *testing.B) {
	rt := renaming.NewNative(1).(*renaming.Native)
	c := renaming.NewPhasedCounter(rt, 8, 1024)
	p := rt.NewProc(0)
	b.ReportAllocs()
	for b.Loop() {
		c.Inc(p)
	}
}

// BenchmarkAACIncSerial is the other A/B leg: the same merge-layout AAC
// spine incremented directly by the same process. PhasedIncJoined must sit
// within the documented ~2% of this row.
func BenchmarkAACIncSerial(b *testing.B) {
	rt := renaming.NewNative(1).(*renaming.Native)
	c := renaming.NewPhasedCounter(rt, 8, 1024).Spine()
	p := rt.NewProc(0)
	b.ReportAllocs()
	for b.Loop() {
		c.Inc(p)
	}
}

// BenchmarkPhasedIncSplit is the serial split-mode cost: one padded cell
// fetch-add, with a spine merge every 1024th op.
func BenchmarkPhasedIncSplit(b *testing.B) {
	rt := renaming.NewNative(1).(*renaming.Native)
	c := renaming.NewPhasedCounter(rt, 8, 1024)
	c.SetMode(renaming.PhaseSplit)
	p := rt.NewProc(0)
	b.ReportAllocs()
	for b.Loop() {
		c.Inc(p)
	}
}

// reportPhaseStats attaches the phase machinery's accounting to the row:
// final mode (0 joined / 1 split), transitions, and retries per 1k ops.
func reportPhaseStats(b *testing.B, pool *renaming.PhasedPool) {
	st := pool.Stats()
	b.ReportMetric(float64(st.Mode), "mode")
	b.ReportMetric(float64(st.Switches), "switches")
	if st.Ops > 0 {
		b.ReportMetric(1000*float64(st.LeaseRetries+st.SpineRetries)/float64(st.Ops), "retries/kop")
	}
}
