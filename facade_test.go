// Integration tests against the public facade: the full stack exercised
// end to end through both runtimes, the way a downstream user would drive
// it, including testing/quick property checks with scripted schedules.
package renaming_test

import (
	"bytes"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	renaming "repro"
)

func TestFacadeSimRenamingTight(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		rt := renaming.NewSim(seed, renaming.RandomSchedule(seed))
		ren := renaming.NewRenaming(rt)
		const k = 10
		names := make([]uint64, k)
		rt.Run(k, func(p renaming.Proc) {
			names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
		})
		assertTight(t, names)
	}
}

func TestFacadeNativeRenamingTight(t *testing.T) {
	// Real goroutines, Go-scheduler interleavings, hardware TAS.
	for trial := uint64(0); trial < 20; trial++ {
		rt := renaming.NewNative(trial)
		ren := renaming.NewRenaming(rt, renaming.WithHardwareTAS())
		const k = 16
		names := make([]uint64, k)
		rt.Run(k, func(p renaming.Proc) {
			names[p.ID()] = ren.Rename(p, uint64(p.ID())*7919+1)
		})
		assertTight(t, names)
	}
}

func TestFacadeNativeRegisterTAS(t *testing.T) {
	// The randomized register protocol must also be safe under real
	// concurrency (its safety argument is schedule-independent).
	for trial := uint64(0); trial < 10; trial++ {
		rt := renaming.NewNative(trial)
		ren := renaming.NewRenaming(rt, renaming.WithRegisterTAS())
		const k = 8
		names := make([]uint64, k)
		rt.Run(k, func(p renaming.Proc) {
			names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
		})
		assertTight(t, names)
	}
}

func TestFacadeBalancedBase(t *testing.T) {
	rt := renaming.NewSim(3, renaming.RandomSchedule(3))
	ren := renaming.NewRenaming(rt, renaming.WithBalancedBase())
	const k = 12
	names := make([]uint64, k)
	rt.Run(k, func(p renaming.Proc) {
		names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
	})
	assertTight(t, names)
}

func TestFacadeBitBatchingNative(t *testing.T) {
	rt := renaming.NewNative(5)
	const n = 32
	bb := renaming.NewBitBatchingRenaming(rt, n, renaming.WithHardwareTAS())
	names := make([]uint64, n)
	rt.Run(n, func(p renaming.Proc) {
		names[p.ID()] = bb.Rename(p, uint64(p.ID())+1)
	})
	assertTight(t, names)
}

func TestFacadeNetworkRenaming(t *testing.T) {
	rt := renaming.NewSim(4, renaming.RoundRobin())
	rn := renaming.NewNetworkRenaming(rt, 32)
	if rn.Width() != 32 || rn.Depth() < 10 {
		t.Fatalf("unexpected network shape: width=%d depth=%d", rn.Width(), rn.Depth())
	}
	const k = 9
	names := make([]uint64, k)
	rt.Run(k, func(p renaming.Proc) {
		names[p.ID()] = rn.Rename(p, uint64(p.ID()*3)+1)
	})
	assertTight(t, names)
}

func TestFacadeCounterNative(t *testing.T) {
	rt := renaming.NewNative(6)
	c := renaming.NewCounter(rt, renaming.WithHardwareTAS())
	const k, each = 8, 10
	var mu sync.Mutex
	perProcReads := make([][]uint64, k)
	rt.Run(k, func(p renaming.Proc) {
		var seen []uint64
		for i := 0; i < each; i++ {
			c.Inc(p)
			seen = append(seen, c.Read(p))
		}
		mu.Lock()
		perProcReads[p.ID()] = seen
		mu.Unlock()
	})
	for id, seen := range perProcReads {
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				t.Fatalf("proc %d saw counter go backwards: %v", id, seen)
			}
		}
		if final := seen[len(seen)-1]; final > k*each {
			t.Fatalf("proc %d read %d, above total increments %d", id, final, k*each)
		}
	}
}

func TestFacadeFetchIncNative(t *testing.T) {
	rt := renaming.NewNative(7)
	const m, k = 64, 16
	f := renaming.NewFetchInc(rt, m, renaming.WithHardwareTAS())
	if f.M() != m {
		t.Fatalf("M() = %d", f.M())
	}
	var mu sync.Mutex
	var got []uint64
	rt.Run(k, func(p renaming.Proc) {
		for i := 0; i < 3; i++ {
			v := f.Inc(p)
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		}
	})
	counts := map[uint64]int{}
	for _, v := range got {
		counts[v]++
	}
	for v := uint64(0); v < uint64(len(got)) && v < m-1; v++ {
		if counts[v] != 1 {
			t.Fatalf("ticket %d handed out %d times", v, counts[v])
		}
	}
}

func TestFacadeLTASNative(t *testing.T) {
	rt := renaming.NewNative(8)
	const ell, k = 5, 20
	o := renaming.NewLTAS(rt, ell, renaming.WithHardwareTAS())
	if o.Ell() != ell {
		t.Fatalf("Ell() = %d", o.Ell())
	}
	wins := make([]bool, k)
	rt.Run(k, func(p renaming.Proc) {
		wins[p.ID()] = o.Try(p)
	})
	n := 0
	for _, w := range wins {
		if w {
			n++
		}
	}
	if n != ell {
		t.Fatalf("%d winners, want %d", n, ell)
	}
}

func TestFacadeCrashSchedule(t *testing.T) {
	adv := renaming.CrashAt(renaming.RandomSchedule(9), map[int]uint64{2: 15})
	rt := renaming.NewSim(9, adv)
	ren := renaming.NewRenaming(rt)
	const k = 6
	names := make([]uint64, k)
	st := rt.Run(k, func(p renaming.Proc) {
		names[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
	})
	var survivors []uint64
	for i, n := range names {
		if !st.Crashed[i] {
			survivors = append(survivors, n)
		}
	}
	seen := map[uint64]bool{}
	for _, n := range survivors {
		if n < 1 || n > k || seen[n] {
			t.Fatalf("bad survivor names %v", survivors)
		}
		seen[n] = true
	}
}

func TestFacadeStepCap(t *testing.T) {
	rt := renaming.NewSimCapped(1, renaming.RoundRobin(), 100)
	reg := rt.NewReg(0)
	st := rt.Run(2, func(p renaming.Proc) {
		for {
			reg.Read(p)
		}
	})
	if !st.StepCapHit {
		t.Fatal("step cap not enforced through facade")
	}
}

// TestQuickRenamingUnderScriptedSchedules is the property-based sweep: for
// quick-generated seeds, contention levels, and uid spreads, renaming is
// tight under a quick-generated schedule (every byte of the script picks
// the next process).
func TestQuickRenamingUnderScriptedSchedules(t *testing.T) {
	prop := func(seed uint64, kRaw uint8, stride uint64, script []byte) bool {
		k := int(kRaw)%12 + 1
		ids := make([]int, len(script))
		for i, b := range script {
			ids[i] = int(b) % k
		}
		rt := renaming.NewSim(seed, replaySchedule(ids))
		ren := renaming.NewRenaming(rt)
		names := make([]uint64, k)
		rt.Run(k, func(p renaming.Proc) {
			names[p.ID()] = ren.Rename(p, uint64(p.ID())*(stride|1)+1)
		})
		return tight(names)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFetchIncPrefix: under quick-generated schedules, completed
// fetch-and-increment values always form a saturated prefix.
func TestQuickFetchIncPrefix(t *testing.T) {
	prop := func(seed uint64, kRaw, mRaw uint8, script []byte) bool {
		k := int(kRaw)%8 + 1
		m := uint64(mRaw)%16 + 1
		ids := make([]int, len(script))
		for i, b := range script {
			ids[i] = int(b) % k
		}
		rt := renaming.NewSim(seed, replaySchedule(ids))
		f := renaming.NewFetchInc(rt, m)
		var mu sync.Mutex
		var got []uint64
		rt.Run(k, func(p renaming.Proc) {
			v := f.Inc(p)
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		})
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i, v := range got {
			want := uint64(i)
			if want >= m {
				want = m - 1
			}
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// replaySchedule adapts a script of process indices to the facade's
// Adversary interface.
func replaySchedule(script []int) renaming.Adversary {
	return renaming.Scripted(script)
}

func assertTight(t *testing.T, names []uint64) {
	t.Helper()
	if !tight(names) {
		t.Fatalf("names %v are not exactly 1..%d", names, len(names))
	}
}

func tight(names []uint64) bool {
	seen := make(map[uint64]bool, len(names))
	for _, n := range names {
		if n < 1 || n > uint64(len(names)) || seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// TestFacadeLoadScenario drives the workload harness through the facade:
// a shrunken open-loop scenario against a fresh pool target, and the same
// scenario on the simulator, which must replay bit-identically per seed.
func TestFacadeLoadScenario(t *testing.T) {
	s, ok := renaming.FindScenario("poisson")
	if !ok {
		t.Fatal("catalog scenario poisson missing")
	}
	s.Duration = 200 * time.Millisecond
	s.Arrival.Rate = 2000
	s.Workers = 2

	r := renaming.RunScenario(s, renaming.NewLoadTarget(s.Seed))
	if r.Verdict != "ok" {
		t.Fatalf("native verdict %q\n%s", r.Verdict, r.JSON())
	}
	if r.Ops == 0 || r.Renames == 0 || r.Incs == 0 {
		t.Fatalf("mix not exercised: %d ops (%d renames, %d incs, %d reads)",
			r.Ops, r.Renames, r.Incs, r.Reads)
	}

	s.Ops = 60
	s1 := renaming.RunScenarioSim(s, 11)
	s2 := renaming.RunScenarioSim(s, 11)
	if s1.Verdict != "ok" {
		t.Fatalf("sim verdict %q", s1.Verdict)
	}
	if !bytes.Equal(s1.Stable().JSON(), s2.Stable().JSON()) {
		t.Fatal("sim scenario did not replay bit-identically per seed")
	}
}

// TestFacadeLoadCatalog pins the catalog surface: ≥8 named scenarios, all
// resolvable, churn among them with a fault plan armed.
func TestFacadeLoadCatalog(t *testing.T) {
	cat := renaming.LoadCatalog()
	if len(cat) < 8 {
		t.Fatalf("catalog has %d scenarios, want ≥ 8", len(cat))
	}
	churn, ok := renaming.FindScenario("churn")
	if !ok {
		t.Fatal("catalog scenario churn missing")
	}
	if churn.Churn == nil || churn.Faults == nil || churn.Faults.Crashes() == 0 {
		t.Fatal("churn scenario must vary k and arm a fault plan")
	}
}

// TestFacadePhasedPool pins the phased-counting facade: the served pool
// counts exactly under concurrency in every policy, and the stats surface
// reports the phase machinery.
func TestFacadePhasedPool(t *testing.T) {
	pool := renaming.NewPhasedCounterPool(
		renaming.WithLanes(4), renaming.WithEpoch(8),
		renaming.WithPhasedSeed(42), renaming.WithPhasePolicy(renaming.PhasePinSplit))
	const g, per = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				pool.Inc()
			}
		}()
	}
	wg.Wait()
	if v := pool.ReadStrict(); v != g*per {
		t.Fatalf("ReadStrict = %d, want %d", v, g*per)
	}
	st := pool.Stats()
	if st.Mode != renaming.PhaseSplit || st.Merges == 0 || st.Ops < g*per {
		t.Fatalf("stats off: %+v", st)
	}
}

// TestFacadePhasedCounterBare pins the unmanaged constructor on the sim
// runtime: mode transitions mid-execution keep the count exact.
func TestFacadePhasedCounterBare(t *testing.T) {
	rt := renaming.NewSim(5, renaming.RandomSchedule(5))
	c := renaming.NewPhasedCounter(rt, 4, 2)
	const k, each = 4, 6
	rt.Run(k, func(p renaming.Proc) {
		if p.ID() == 0 {
			c.SetMode(renaming.PhaseSplit)
		}
		for i := 0; i < each; i++ {
			c.Inc(p)
		}
		if p.ID() == 0 {
			c.SetMode(renaming.PhaseJoined)
		}
		c.Inc(p)
	})
	rt.Reset(6, renaming.RandomSchedule(6))
	var final uint64
	rt.Run(1, func(p renaming.Proc) { final = c.ReadStrict(p) })
	if want := uint64(k * (each + 1)); final != want {
		t.Fatalf("final = %d, want %d", final, want)
	}
}
