package renaming_test

import (
	"fmt"
	"sort"

	renaming "repro"
)

// Example demonstrates the basic flow: k processes with sparse identities
// acquire exactly the names 1..k.
func Example() {
	rt := renaming.NewSim(1, renaming.RoundRobin())
	ren := renaming.NewRenaming(rt)

	const k = 4
	names := make([]uint64, k)
	rt.Run(k, func(p renaming.Proc) {
		names[p.ID()] = ren.Rename(p, uint64(p.ID())*1_000_003+7)
	})

	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	fmt.Println(names)
	// Output: [1 2 3 4]
}

// ExampleNewCounter shows the Section 8.1 monotone counter: a sequence of
// increments interleaved with reads that never run backwards.
func ExampleNewCounter() {
	rt := renaming.NewSim(2, renaming.Sequential())
	ctr := renaming.NewCounter(rt)

	var reads []uint64
	rt.Run(1, func(p renaming.Proc) {
		for i := 0; i < 3; i++ {
			ctr.Inc(p)
			reads = append(reads, ctr.Read(p))
		}
	})
	fmt.Println(reads)
	// Output: [1 2 3]
}

// ExampleNewFetchInc dispenses bounded tickets: values 0..m−1 once each,
// then saturation.
func ExampleNewFetchInc() {
	rt := renaming.NewSim(7, renaming.Sequential())
	f := renaming.NewFetchInc(rt, 4)

	var got []uint64
	rt.Run(1, func(p renaming.Proc) {
		for i := 0; i < 6; i++ {
			got = append(got, f.Inc(p))
		}
	})
	fmt.Println(got)
	// Output: [0 1 2 3 3 3]
}

// ExampleNewLTAS shows the ℓ-test-and-set: exactly ℓ winners.
func ExampleNewLTAS() {
	rt := renaming.NewSim(5, renaming.Sequential())
	o := renaming.NewLTAS(rt, 2)

	wins := 0
	rt.Run(5, func(p renaming.Proc) {
		if o.Try(p) {
			wins++ // sequential schedule: no data race
		}
	})
	fmt.Println("winners:", wins)
	// Output: winners: 2
}

// ExampleNewLongLived recycles released names instead of growing the
// namespace.
func ExampleNewLongLived() {
	rt := renaming.NewSim(9, renaming.Sequential())
	ll := renaming.NewLongLived(rt)

	var trace []uint64
	rt.Run(1, func(p renaming.Proc) {
		a := ll.Acquire(p)
		b := ll.Acquire(p)
		ll.Release(p, a)
		c := ll.Acquire(p) // recycles a
		trace = append(trace, a, b, c)
	})
	fmt.Println(trace[0] == trace[2], trace[0] != trace[1])
	// Output: true true
}

// ExampleNewCountingNetwork counts with a bitonic balancer network: values
// are distinct and, at quiescence, consecutive from 1.
func ExampleNewCountingNetwork() {
	rt := renaming.NewSim(3, renaming.Sequential())
	cn := renaming.NewCountingNetwork(rt, 4)

	var vals []uint64
	rt.Run(1, func(p renaming.Proc) {
		for i := 0; i < 6; i++ {
			vals = append(vals, cn.Next(p))
		}
	})
	fmt.Println(vals)
	// Output: [1 2 3 4 5 6]
}

// ExampleNewSimTraced captures a deterministic execution transcript.
func ExampleNewSimTraced() {
	decisions := 0
	rt := renaming.NewSimTraced(4, renaming.RoundRobin(), func(e renaming.TraceEvent) {
		decisions++
	})
	reg := rt.NewReg(0)
	rt.Run(2, func(p renaming.Proc) {
		reg.Write(p, uint64(p.ID()))
		reg.Read(p)
	})
	fmt.Println("decisions:", decisions)
	// Output: decisions: 4
}
