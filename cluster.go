package renaming

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/load"
	"repro/internal/netserve"
)

// This file is the facade over internal/cluster, the horizontal serving
// tier: N wire servers, each owning a disjoint slice of the cluster name
// space, behind a client-side consistent-hash router with scatter-gather
// batch fan-out — plus the admission-control surface of the single-node
// tier it composes (shed-on-deadline overload protection). See doc.go
// ("Clustered serving") for the model and BENCHMARKS.md ("The cluster
// tier") for the fan-out measurements; cmd/renameserve -ring/-node and
// cmd/renameload -ring are the CLI front ends.

type (
	// ClusterRing is the static routing table of a cluster: node id →
	// address → disjoint name range, with deterministic jump-hash key
	// placement.
	ClusterRing = cluster.Ring
	// ClusterNode is one node of a ring (id, wire address, and the cluster
	// name range [Base, Base+Span) it owns).
	ClusterNode = cluster.Node
	// ClusterClient routes operations over one pipelined wire connection
	// per ring node; rename replies come back offset into the owning
	// node's range (cluster-wide names).
	ClusterClient = cluster.Client
	// ClusterBatch is a scatter-gather batch: ops scatter to per-node
	// sub-batches as they are added, fan out concurrently on Send, and
	// gather in caller order on Wait; a dead node fails only its own ops.
	ClusterBatch = cluster.Batch
	// ClusterNodeError scopes a cluster failure to one node (which node,
	// which name range), wrapping the underlying wire error.
	ClusterNodeError = cluster.NodeError
	// WireShedError is the server's admission control refusing a batch —
	// the one retryable wire failure (the server started nothing).
	WireShedError = netserve.ShedError
	// WireOptions configures a wire server beyond its pools (admission
	// control).
	WireOptions = netserve.Options
	// WireAdmissionConfig bounds a wire server's concurrently-executing
	// operations: PerShard slots per gate, a bounded wait queue, and
	// shed-on-deadline for ops that cannot be admitted within their
	// batch's budget. The zero value admits everything.
	WireAdmissionConfig = netserve.AdmissionConfig
)

// NewClusterRing builds a ring over addrs with uniform disjoint name
// ranges: node i owns [i*span, (i+1)*span).
func NewClusterRing(addrs []string, span uint64) (*ClusterRing, error) {
	return cluster.New(addrs, span)
}

// ParseClusterRing reads a ring from its text form ("id addr base span"
// per line, '#' comments).
func ParseClusterRing(text string) (*ClusterRing, error) { return cluster.Parse(text) }

// LoadClusterRing reads a ring file (the ParseClusterRing format —
// renameserve -ring and renameload -ring consume the same file).
func LoadClusterRing(path string) (*ClusterRing, error) { return cluster.Load(path) }

// DialCluster connects to every node of the ring, retrying each with
// bounded backoff for up to wait; an unreachable node fails the dial with
// a *ClusterNodeError naming the node and its name range.
func DialCluster(ring *ClusterRing, wait time.Duration) (*ClusterClient, error) {
	return cluster.Dial(ring, wait)
}

// ListenWireOpts is ListenWire with explicit WireOptions (admission
// control) — the per-node server constructor of a cluster deployment.
func ListenWireOpts(addr string, tg *LoadTarget, opts WireOptions) (*WireServer, error) {
	return netserve.ListenAndServeOpts(addr, tg, opts)
}

// RunScenarioCluster dials every node of the ring, executes the scenario
// over the routed scatter path, and closes the connections — the cluster
// counterpart of RunScenarioWire. Admission sheds count in the report's
// Sheds field and do not fail the verdict.
func RunScenarioCluster(s Scenario, ring *ClusterRing) (*LoadReport, error) {
	c, err := cluster.Dial(ring, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return load.RunRemote(s, c), nil
}

// IsShedError reports whether an error chain carries a server admission
// shed (retryable by contract; see WireShedError).
func IsShedError(err error) bool { return load.IsShed(err) }
