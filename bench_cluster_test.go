package renaming_test

// The cluster-tier benchmark suite: the loopback cost of serving renames
// through the client-side router and scatter-gather fan-out
// (internal/cluster), swept by node count and batch size. Reported ns/op
// is per OPERATION, not per batch. The nodes=1 rows bound the routing
// overhead against the plain wire suite (BenchmarkWireRename — same
// machinery minus the router); the nodes=2/3 rows measure the fan-out:
// each batch splits into per-node sub-frames that are all in flight
// concurrently, so the per-op cost should track ~the slowest node's round
// trip, not the node count. On a single-core runner every extra node still
// adds real serve work per batch, so the nodes sweep reads as an upper
// bound on the fan-out cost. BENCHMARKS.md "The cluster tier" holds the
// comparison table.

import (
	"fmt"
	"net"
	"testing"
	"time"

	renaming "repro"
)

// newClusterBench starts n loopback wire servers behind a uniform ring and
// one routed cluster client.
func newClusterBench(b *testing.B, n int) *renaming.ClusterClient {
	b.Helper()
	addrs := make([]string, n)
	srvs := make([]*renaming.WireServer, n)
	for i := range srvs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatalf("listen node %d: %v", i, err)
		}
		srvs[i] = renaming.ServeWire(ln, nil)
		addrs[i] = srvs[i].Addr().String()
	}
	ring, err := renaming.NewClusterRing(addrs, 1<<20)
	if err != nil {
		b.Fatalf("ring: %v", err)
	}
	c, err := renaming.DialCluster(ring, 2*time.Second)
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	b.Cleanup(func() {
		c.Close()
		for _, srv := range srvs {
			srv.Close()
		}
	})
	return c
}

// BenchmarkClusterRename is the fan-out sweep: renames through the routed
// scatter-gather batch over 1, 2, and 3 loopback nodes at batch 1, 8, 64.
// Keys walk a 64-wide window so multi-node rings actually scatter.
func BenchmarkClusterRename(b *testing.B) {
	for _, nodes := range []int{1, 2, 3} {
		for _, batch := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("nodes=%d/batch=%d", nodes, batch), func(b *testing.B) {
				c := newClusterBench(b, nodes)
				bt := c.NewBatch()
				b.ReportAllocs()
				b.ResetTimer()
				for done := 0; done < b.N; {
					n := batch
					if rem := b.N - done; n > rem {
						n = rem
					}
					bt.Reset()
					for i := 0; i < n; i++ {
						bt.Rename(uint64(i & 63))
					}
					if _, err := bt.Commit(); err != nil {
						b.Fatal(err)
					}
					done += n
				}
			})
		}
	}
}

// BenchmarkClusterPipelinedDo measures the routed group-commit path:
// concurrent Do callers coalesce into shared frames per node — the
// adaptive counterpart of the explicit scatter-gather sweep.
func BenchmarkClusterPipelinedDo(b *testing.B) {
	c := newClusterBench(b, 3)
	b.ReportAllocs()
	b.ResetTimer()
	var key uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := key % 64
			key++
			if _, err := c.Do(renaming.WireRename, k, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}
