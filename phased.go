package renaming

import (
	"time"

	"repro/internal/phase"
)

// This file is the phased-counting facade over internal/phase: the
// contention-adaptive counter that serves increments through shard-local
// cells at high contention and delegates straight to the authoritative
// spine when traffic is calm. See doc.go ("Phased counting") for the model
// and BENCHMARKS.md ("Adaptive phase reconciliation") for measurements.

type (
	// PhasedCounter is the split/joined phased counter over one
	// authoritative spine (the AAC tree by default). Joined mode delegates
	// every Inc to the spine; split mode absorbs Incs into padded per-shard
	// cells reconciled on epoch boundaries. Reads stay monotone-consistent
	// in both modes and across transitions.
	PhasedCounter = phase.Counter
	// PhasedPool serves one shared PhasedCounter to arbitrarily many
	// goroutines through serving lanes, and switches the counter's mode
	// automatically and hysteretically on live contention signals.
	PhasedPool = phase.Pool
	// PhaseStats is a point-in-time summary of a PhasedPool: current mode,
	// transitions, merges, served ops, retry gauges, in-flight lanes, and
	// the spine's current staleness (Lag).
	PhaseStats = phase.Stats
	// PhaseMode is the counter's current phase (PhaseJoined or PhaseSplit).
	PhaseMode = phase.Mode
	// PhasePolicy selects how a PhasedPool drives the mode: PhaseAuto
	// (hysteretic controller), PhasePinJoined, or PhasePinSplit.
	PhasePolicy = phase.Policy
)

// Phase modes and pool policies, re-exported.
const (
	PhaseJoined = phase.Joined
	PhaseSplit  = phase.Split

	PhaseAuto      = phase.Auto
	PhasePinJoined = phase.PinJoined
	PhasePinSplit  = phase.PinSplit
)

// PhasedOption configures NewPhasedCounterPool.
type PhasedOption func(*phase.Options)

// WithLanes sets the number of serving lanes (rounded up to a power of
// two; default 8, or 2×GOMAXPROCS when larger). Lane count is also the
// counter's shard-cell count.
func WithLanes(n int) PhasedOption {
	return func(o *phase.Options) { o.Lanes = n }
}

// WithEpoch sets the cooperative merge period per cell (rounded up to a
// power of two; default 1024): in split mode a lane merges its cell into
// the spine whenever the cell's cumulative count crosses a multiple of the
// epoch. Smaller epochs tighten ReadSpine's staleness; larger ones amortize
// the spine walk further.
func WithEpoch(n int) PhasedOption {
	return func(o *phase.Options) { o.Epoch = n }
}

// WithPhasedSeed seeds the pool's native runtime (coin streams).
func WithPhasedSeed(seed uint64) PhasedOption {
	return func(o *phase.Options) { o.Seed = seed }
}

// WithCASSpine swaps the default AAC-tree spine for the baseline CAS-word
// counter (whose failed-CAS gauge then feeds the controller directly).
func WithCASSpine() PhasedOption {
	return func(o *phase.Options) { o.CASSpine = true }
}

// WithPhasePolicy pins or automates mode control (default PhaseAuto).
func WithPhasePolicy(p PhasePolicy) PhasedOption {
	return func(o *phase.Options) { o.Policy = p }
}

// WithPhaseThresholds tunes the hysteresis band: a joined pool votes to
// split at contention score ≥ enter (retries per op over the last tick),
// a split pool votes to rejoin at ≤ exit. Defaults 0.05 and 0.01.
func WithPhaseThresholds(enter, exit float64) PhasedOption {
	return func(o *phase.Options) { o.EnterSplit, o.ExitSplit = enter, exit }
}

// WithReconcileEvery runs a dedicated reconciler goroutine merging every
// cell at the given period, bounding the spine's staleness in wall time
// (Close stops it).
func WithReconcileEvery(d time.Duration) PhasedOption {
	return func(o *phase.Options) { o.Reconcile = d }
}

// NewPhasedCounterPool builds the serving pool and its shared phased
// counter on a fresh native runtime:
//
//	pool := renaming.NewPhasedCounterPool()
//	// any number of goroutines:
//	pool.Inc()
//	v := pool.Read()        // fast, monotone-consistent, ≤ one epoch stale
//	exact := pool.ReadStrict() // forces reconciliation
//	st := pool.Stats()      // mode, switches, retries, lag
func NewPhasedCounterPool(opts ...PhasedOption) *PhasedPool {
	var o phase.Options
	for _, f := range opts {
		f(&o)
	}
	return phase.NewPool(o)
}

// NewPhasedCounter builds a bare phased counter (no serving pool, no
// controller) over an AAC merge-layout spine on mem: lanes shard cells
// (and process slots), epoch the cooperative merge period. The caller
// drives the mode with SetMode; process ids must stay below the rounded
// lane count. For the served, auto-switching configuration use
// NewPhasedCounterPool.
func NewPhasedCounter(mem Mem, lanes, epoch int) *PhasedCounter {
	return phase.NewAAC(mem, lanes, epoch)
}
