// Benchmarks, one per experiment table (see BENCHMARKS.md for the harness
// and how to regenerate numbers).
// Each benchmark iteration executes one full simulated run; the custom
// metrics report the model quantities the paper bounds (simulated steps and
// test-and-set entries per process), while ns/op measures the harness
// itself. BenchmarkNative* run the same objects on real goroutines.
package renaming_test

import (
	"fmt"
	"testing"

	renaming "repro"
	"repro/internal/shmem"
)

// simRun executes body on a fresh simulator and accumulates step metrics.
func simRun(b *testing.B, k int, build func(rt *renaming.SimRuntime) func(renaming.Proc)) {
	b.Helper()
	var maxSteps, totalSteps, comps, tasEnters uint64
	for i := 0; i < b.N; i++ {
		rt := renaming.NewSim(uint64(i), renaming.RandomSchedule(uint64(i)))
		body := build(rt)
		st := rt.Run(k, body)
		maxSteps += st.MaxSteps()
		totalSteps += st.TotalSteps()
		comps += st.MaxEvent(shmem.EvComparator)
		tasEnters += st.MaxEvent(shmem.EvTASEnter)
	}
	n := float64(b.N)
	b.ReportMetric(float64(maxSteps)/n, "steps/proc")
	b.ReportMetric(float64(totalSteps)/n, "steps/run")
	if comps > 0 {
		b.ReportMetric(float64(comps)/n, "comparators/proc")
	}
	if tasEnters > 0 {
		b.ReportMetric(float64(tasEnters)/n, "tas/proc")
	}
}

// BenchmarkBitBatching regenerates table E1 (Lemma 1, Cor. 1–2): full
// contention renaming into exactly n names.
func BenchmarkBitBatching(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			simRun(b, n, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				bb := renaming.NewBitBatchingRenaming(rt, n)
				return func(p renaming.Proc) { bb.Rename(p, uint64(p.ID())+1) }
			})
		})
	}
}

// BenchmarkRenamingNetwork regenerates table E5 (Theorem 1, Cor. 3): the
// fixed-width renaming network at full occupancy.
func BenchmarkRenamingNetwork(b *testing.B) {
	for _, m := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			simRun(b, m, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				rn := renaming.NewNetworkRenaming(rt, m)
				return func(p renaming.Proc) { rn.Rename(p, uint64(p.ID())+1) }
			})
		})
	}
}

// BenchmarkStrongAdaptive regenerates table E8 (Theorem 3): the headline
// adaptive algorithm across contention levels.
func BenchmarkStrongAdaptive(b *testing.B) {
	for _, k := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				sa := renaming.NewRenaming(rt)
				return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }
			})
		})
	}
}

// BenchmarkStrongAdaptiveHardware is the deterministic hardware-TAS ablation
// (Discussion §1): same algorithm, comparators resolved by single CAS.
func BenchmarkStrongAdaptiveHardware(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				sa := renaming.NewRenaming(rt, renaming.WithHardwareTAS())
				return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }
			})
		})
	}
}

// BenchmarkLinearProbeBaseline regenerates the baseline column of table E14.
func BenchmarkLinearProbeBaseline(b *testing.B) {
	for _, k := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				lp := renaming.NewLinearProbeRenaming(rt)
				return func(p renaming.Proc) { lp.Rename(p, uint64(p.ID())+1) }
			})
		})
	}
}

// BenchmarkCounterInc regenerates table E10 (Lemma 4): monotone counter
// increments plus reads under contention.
func BenchmarkCounterInc(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				c := renaming.NewCounter(rt)
				return func(p renaming.Proc) {
					for i := 0; i < 4; i++ {
						c.Inc(p)
						c.Read(p)
					}
				}
			})
		})
	}
}

// BenchmarkFetchInc regenerates table E13 (Theorem 6).
func BenchmarkFetchInc(b *testing.B) {
	for _, m := range []uint64{16, 256} {
		for _, k := range []int{4, 16} {
			b.Run(fmt.Sprintf("m=%d/k=%d", m, k), func(b *testing.B) {
				simRun(b, k, func(rt *renaming.SimRuntime) func(renaming.Proc) {
					f := renaming.NewFetchInc(rt, m)
					return func(p renaming.Proc) { f.Inc(p) }
				})
			})
		}
	}
}

// BenchmarkLTAS regenerates table E12 (Lemma 5).
func BenchmarkLTAS(b *testing.B) {
	for _, ell := range []uint64{1, 8} {
		b.Run(fmt.Sprintf("ell=%d", ell), func(b *testing.B) {
			simRun(b, 16, func(rt *renaming.SimRuntime) func(renaming.Proc) {
				o := renaming.NewLTAS(rt, ell)
				return func(p renaming.Proc) { o.Try(p) }
			})
		})
	}
}

// BenchmarkNativeRenaming runs strong adaptive renaming on real goroutines
// (wall-clock throughput of the library as a Go component, hardware TAS).
func BenchmarkNativeRenaming(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := renaming.NewNative(uint64(i))
				sa := renaming.NewRenaming(rt, renaming.WithHardwareTAS())
				rt.Run(k, func(p renaming.Proc) {
					sa.Rename(p, uint64(p.ID())+1)
				})
			}
		})
	}
}

// BenchmarkNativeCounter measures the monotone counter on real goroutines.
func BenchmarkNativeCounter(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := renaming.NewNative(uint64(i))
				c := renaming.NewCounter(rt, renaming.WithHardwareTAS())
				rt.Run(k, func(p renaming.Proc) {
					for j := 0; j < 4; j++ {
						c.Inc(p)
						c.Read(p)
					}
				})
			}
		})
	}
}
