// Execution benchmarks, one per experiment table (see BENCHMARKS.md for
// the harness and how to regenerate numbers). Since the two-phase object
// model, these measure the *execution* cost only: the object graph is
// compiled and instantiated once per benchmark and reset between
// iterations — the steady state of a repeated-execution sweep or a
// long-lived serving loop (allocation-free after warmup). Construction
// cost is measured separately in bench_construction_test.go; the
// fresh-build benchmarks there reproduce the old construct-per-iteration
// behavior for the amortization comparison (recorded in BENCH_2.json).
//
// Each iteration executes one full simulated run; the custom metrics
// report the model quantities the paper bounds (simulated steps and
// test-and-set entries per process), while ns/op measures the harness
// itself. BenchmarkNative* run the same objects on real goroutines.
package renaming_test

import (
	"fmt"
	"testing"

	renaming "repro"
	"repro/internal/shmem"
)

// simRun executes one reset-many sweep: build instantiates the object
// graph on the long-lived runtime and returns the per-execution body plus
// its reset; every iteration replays a fresh (seed, schedule) point
// against the reused graph. Construction stays outside the timed region.
func simRun(b *testing.B, k int, build func(mem renaming.Mem) (body func(renaming.Proc), reset func())) {
	b.Helper()
	rt := renaming.NewSim(0, renaming.RandomSchedule(0))
	body, reset := build(rt)
	var maxSteps, totalSteps, comps, tasEnters uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			reset()
			rt.Reset(uint64(i), renaming.RandomSchedule(uint64(i)))
		}
		st := rt.Run(k, body)
		maxSteps += st.MaxSteps()
		totalSteps += st.TotalSteps()
		comps += st.MaxEvent(shmem.EvComparator)
		tasEnters += st.MaxEvent(shmem.EvTASEnter)
	}
	n := float64(b.N)
	b.ReportMetric(float64(maxSteps)/n, "steps/proc")
	b.ReportMetric(float64(totalSteps)/n, "steps/run")
	if comps > 0 {
		b.ReportMetric(float64(comps)/n, "comparators/proc")
	}
	if tasEnters > 0 {
		b.ReportMetric(float64(tasEnters)/n, "tas/proc")
	}
}

// BenchmarkBitBatching regenerates table E1 (Lemma 1, Cor. 1–2): full
// contention renaming into exactly n names.
func BenchmarkBitBatching(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			simRun(b, n, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				bb := renaming.CompileBitBatching(n).Instantiate(mem)
				return func(p renaming.Proc) { bb.Rename(p, uint64(p.ID())+1) }, bb.Reset
			})
		})
	}
}

// BenchmarkRenamingNetwork regenerates table E5 (Theorem 1, Cor. 3): the
// fixed-width renaming network at full occupancy.
func BenchmarkRenamingNetwork(b *testing.B) {
	for _, m := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			simRun(b, m, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				rn := renaming.CompileNetworkRenaming(m).Instantiate(mem)
				return func(p renaming.Proc) { rn.Rename(p, uint64(p.ID())+1) }, rn.Reset
			})
		})
	}
}

// BenchmarkStrongAdaptive regenerates table E8 (Theorem 3): the headline
// adaptive algorithm across contention levels.
func BenchmarkStrongAdaptive(b *testing.B) {
	for _, k := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				sa := renaming.CompileRenaming().Instantiate(mem)
				return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }, sa.Reset
			})
		})
	}
}

// BenchmarkStrongAdaptiveHardware is the deterministic hardware-TAS ablation
// (Discussion §1): same algorithm, comparators resolved by single CAS.
func BenchmarkStrongAdaptiveHardware(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				sa := renaming.CompileRenaming(renaming.WithHardwareTAS()).Instantiate(mem)
				return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }, sa.Reset
			})
		})
	}
}

// BenchmarkLinearProbeBaseline regenerates the baseline column of table E14.
func BenchmarkLinearProbeBaseline(b *testing.B) {
	for _, k := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				lp := renaming.NewLinearProbeRenaming(mem)
				return func(p renaming.Proc) { lp.Rename(p, uint64(p.ID())+1) }, lp.Reset
			})
		})
	}
}

// BenchmarkCounterInc regenerates table E10 (Lemma 4): monotone counter
// increments plus reads under contention.
func BenchmarkCounterInc(b *testing.B) {
	for _, k := range []int{4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			simRun(b, k, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				c := renaming.CompileCounter().Instantiate(mem)
				return func(p renaming.Proc) {
					for i := 0; i < 4; i++ {
						c.Inc(p)
						c.Read(p)
					}
				}, c.Reset
			})
		})
	}
}

// BenchmarkFetchInc regenerates table E13 (Theorem 6).
func BenchmarkFetchInc(b *testing.B) {
	for _, m := range []uint64{16, 256} {
		for _, k := range []int{4, 16} {
			b.Run(fmt.Sprintf("m=%d/k=%d", m, k), func(b *testing.B) {
				simRun(b, k, func(mem renaming.Mem) (func(renaming.Proc), func()) {
					f := renaming.NewFetchInc(mem, m)
					return func(p renaming.Proc) { f.Inc(p) }, f.Reset
				})
			})
		}
	}
}

// BenchmarkLTAS regenerates table E12 (Lemma 5).
func BenchmarkLTAS(b *testing.B) {
	for _, ell := range []uint64{1, 8} {
		b.Run(fmt.Sprintf("ell=%d", ell), func(b *testing.B) {
			simRun(b, 16, func(mem renaming.Mem) (func(renaming.Proc), func()) {
				o := renaming.NewLTAS(mem, ell)
				return func(p renaming.Proc) { o.Try(p) }, o.Reset
			})
		})
	}
}

// BenchmarkNativeRenaming runs strong adaptive renaming on real goroutines
// (wall-clock throughput of the library as a Go component, hardware TAS),
// instantiate-once / reset-many on a reusable RunGroup: the serving-loop
// steady state — zero allocations per execution beyond the k goroutines.
func BenchmarkNativeRenaming(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rt := renaming.NewNative(1).(*renaming.Native)
			sa := renaming.CompileRenaming(renaming.WithHardwareTAS()).Instantiate(rt)
			g := rt.NewRunGroup(k)
			body := func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 {
					sa.Reset()
				}
				g.Run(body)
			}
		})
	}
}

// BenchmarkNativeRenamingFaultArmed measures the armed step hook: the same
// execution as BenchmarkNativeRenaming but with a FaultPlan armed that
// never fires (it names a process id that never runs), so the difference
// to BenchmarkNativeRenaming is the per-step cost of hook dispatch plus
// the plan checks. The disarmed cost is the nil-check already included in
// BenchmarkNativeRenaming (compare against BENCH_3 — see BENCHMARKS.md).
func BenchmarkNativeRenamingFaultArmed(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rt := renaming.NewNative(1).(*renaming.Native)
			sa := renaming.CompileRenaming(renaming.WithHardwareTAS()).Instantiate(rt)
			ex := renaming.NewExecution(rt, k)
			ex.Faults(renaming.CrashAtStep(map[int]uint64{k: 1 << 60}))
			body := func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 {
					sa.Reset()
				}
				ex.Run(body)
			}
		})
	}
}

// BenchmarkNativeRenamingRecorded measures the trace recorder: recording
// serializes the native execution (the ordering lock is held across every
// operation) to obtain a sound total order for sim replay — the documented
// price of turning a hardware interleaving into a deterministic artifact.
func BenchmarkNativeRenamingRecorded(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rt := renaming.NewNative(1).(*renaming.Native)
			sa := renaming.CompileRenaming(renaming.WithHardwareTAS()).Instantiate(rt)
			ex := renaming.NewExecution(rt, k)
			ex.Record()
			body := func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 {
					sa.Reset()
				}
				ex.Run(body)
			}
		})
	}
}

// BenchmarkNativeCounter measures the monotone counter on real goroutines,
// instantiate-once / reset-many on a reusable RunGroup.
func BenchmarkNativeCounter(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rt := renaming.NewNative(1).(*renaming.Native)
			c := renaming.CompileCounter(renaming.WithHardwareTAS()).Instantiate(rt)
			g := rt.NewRunGroup(k)
			body := func(p renaming.Proc) {
				for j := 0; j < 4; j++ {
					c.Inc(p)
					c.Read(p)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 {
					c.Reset()
				}
				g.Run(body)
			}
		})
	}
}
