// Sweep-engine benchmarks: what a per-worker arena buys over rebuilding
// run state per execution. Three legs on the same workload — bitbatch64
// (k=8 processes renaming into a 64-slot namespace) cycling the burst
// schedule set (rr-burst8, oscillator32, sequential), fault-free:
//
//   - BenchmarkSweepExecReuse: the engine's steady state — object graph
//     instantiated once per arena slot, Runtime.Reset + object Reset per
//     execution, coroutines parked between runs (0 allocs/op);
//   - BenchmarkSweepExecInstantiate: cached blueprint, but a fresh
//     simulator runtime and a fresh instantiation per execution — the
//     naive fleet, paying run-state construction every time;
//   - BenchmarkSweepExecFreshBuild: full facade construction per
//     execution — the pre-two-phase behavior.
//
// The Reuse/Instantiate ratio is the amortization win BENCH_7.json
// records (acceptance: ≥5× at -workers 1). BenchmarkSweepThroughput is
// the same engine under the parallel pass's -cpu sweep; on this
// single-core container the -cpu rows measure oversubscription overhead,
// not scaling (see BENCHMARKS.md).
package renaming_test

import (
	"runtime"
	"testing"

	renaming "repro"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tas"
)

// sweepBenchSpace is the benchmark task space: bitbatch64 × burst
// schedules × fault-free, with enough seeds that a Budget of n executions
// never exhausts the grid.
func sweepBenchSpace(n int) *renaming.SweepSpace {
	obj, ok := renaming.SweepObjectByName("bitbatch64")
	if !ok {
		panic("bitbatch64 left the catalog")
	}
	return &renaming.SweepSpace{
		Objects: []renaming.SweepObject{obj},
		Advs:    sweep.BurstAdvs(),
		Plans:   []renaming.SweepPlan{{Name: "none"}},
		Seeds:   sweep.SeedRange(1, n),
	}
}

// benchAdv mirrors sweep.BurstAdvs for the non-engine legs: the i-th
// execution of every leg runs the same (schedule family, seed) pair.
func benchAdv(i int) sim.Adversary {
	switch i % 3 {
	case 0:
		return sim.NewRoundRobinBurst(8)
	case 1:
		return sim.NewOscillator(32)
	default:
		return sim.NewSequential()
	}
}

func BenchmarkSweepExecReuse(b *testing.B) {
	s, err := renaming.NewSweep(sweepBenchSpace(b.N), renaming.SweepOptions{
		Workers: 1, Budget: b.N, NoHarvest: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rep := s.Run()
	b.StopTimer()
	if rep.Executions != uint64(b.N) || !rep.OK() {
		b.Fatalf("executions=%d verdict=%s, want %d ok", rep.Executions, rep.Verdict, b.N)
	}
	b.ReportMetric(rep.ExecPerSec, "exec/s")
}

func BenchmarkSweepExecInstantiate(b *testing.B) {
	bp := core.CompileBitBatching(64)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		rt := sim.New(uint64(i/3)+1, benchAdv(i))
		bb := bp.Instantiate(rt, tas.MakeUnit)
		rt.Run(8, func(p renaming.Proc) {
			sink += bb.Rename(p, uint64(p.ID())+1)
		})
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("no names acquired")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "exec/s")
}

func BenchmarkSweepExecFreshBuild(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		rt := sim.New(uint64(i/3)+1, benchAdv(i))
		bb := renaming.NewBitBatchingRenaming(rt, 64)
		rt.Run(8, func(p renaming.Proc) {
			sink += bb.Rename(p, uint64(p.ID())+1)
		})
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("no names acquired")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "exec/s")
}

// BenchmarkSweepThroughput runs the full engine — stealing deques, arenas,
// accumulators — at the -cpu sweep's worker count (the parallel bench.sh
// pass picks this up by its Throughput suffix).
func BenchmarkSweepThroughput(b *testing.B) {
	s, err := renaming.NewSweep(sweepBenchSpace(b.N), renaming.SweepOptions{
		Workers: runtime.GOMAXPROCS(0), Budget: b.N, NoHarvest: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	rep := s.Run()
	b.StopTimer()
	if rep.Executions != uint64(b.N) || !rep.OK() {
		b.Fatalf("executions=%d verdict=%s, want %d ok", rep.Executions, rep.Verdict, b.N)
	}
	b.ReportMetric(rep.ExecPerSec, "exec/s")
}
