// Reuse equivalence: the compile-once / instantiate-once / reset-many path
// must produce bit-identical Stats per (seed, adversary) versus fresh
// construction — the acceptance contract of the two-phase object model.
// Each case instantiates one object graph, dirties it with a warmup
// execution under an unrelated seed and schedule (including crashes), then
// replays a matrix of (seed, adversary) executions through Reset and
// compares every Stats field against a freshly built object on a fresh
// runtime.
package renaming_test

import (
	"fmt"
	"reflect"
	"testing"

	renaming "repro"
	"repro/internal/serve"
	"repro/internal/shmem"
	"repro/internal/sim"
)

// advPoint names one adversary construction so both paths build identical,
// fresh schedule state.
type advPoint struct {
	name string
	make func(seed uint64) renaming.Adversary
}

func advMatrix() []advPoint {
	return []advPoint{
		{"random", func(seed uint64) renaming.Adversary { return renaming.RandomSchedule(seed) }},
		{"anticoin", func(seed uint64) renaming.Adversary { return renaming.AntiCoin(seed ^ 0xA5A5) }},
		{"crash", func(seed uint64) renaming.Adversary {
			return renaming.CrashAt(renaming.RandomSchedule(seed), map[int]uint64{1: 10, 3: 25})
		}},
	}
}

// equivCase is one object under test: build instantiates it on a runtime,
// body runs one execution's workload, and reset restores it in place.
type equivCase struct {
	name  string
	k     int
	build func(mem renaming.Mem) (body func(p renaming.Proc), reset func())
}

func equivCases() []equivCase {
	return []equivCase{
		{"strong-adaptive", 6, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			sa := renaming.CompileRenaming().Instantiate(mem)
			return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }, sa.Reset
		}},
		{"strong-adaptive-hardware", 6, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			sa := renaming.CompileRenaming(renaming.WithHardwareTAS()).Instantiate(mem)
			return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }, sa.Reset
		}},
		{"strong-adaptive-balanced", 6, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			sa := renaming.CompileRenaming(renaming.WithBalancedBase()).Instantiate(mem)
			return func(p renaming.Proc) { sa.Rename(p, uint64(p.ID())+1) }, sa.Reset
		}},
		{"bitbatching", 8, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			bb := renaming.CompileBitBatching(8).Instantiate(mem)
			return func(p renaming.Proc) { bb.Rename(p, uint64(p.ID())+1) }, bb.Reset
		}},
		{"network", 8, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			rn := renaming.CompileNetworkRenaming(16).Instantiate(mem)
			return func(p renaming.Proc) { rn.Rename(p, uint64(p.ID()*2)+1) }, rn.Reset
		}},
		{"counter", 4, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			c := renaming.CompileCounter().Instantiate(mem)
			return func(p renaming.Proc) {
				for i := 0; i < 3; i++ {
					c.Inc(p)
					c.Read(p)
				}
			}, c.Reset
		}},
		{"phased-counter", 4, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			c := renaming.NewPhasedCounter(mem, 4, 2)
			return func(p renaming.Proc) {
				if p.ID() == 0 {
					c.SetMode(renaming.PhaseSplit)
				}
				for i := 0; i < 4; i++ {
					c.Inc(p)
					c.Read(p)
				}
				if p.ID() == 1 {
					c.ReadStrict(p)
				}
				if p.ID() == 0 {
					c.SetMode(renaming.PhaseJoined)
				}
				c.Inc(p)
			}, c.Reset
		}},
		{"fetchinc", 5, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			f := renaming.NewFetchInc(mem, 16)
			return func(p renaming.Proc) { f.Inc(p) }, f.Reset
		}},
		{"ltas", 6, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			o := renaming.NewLTAS(mem, 3)
			return func(p renaming.Proc) { o.Try(p) }, o.Reset
		}},
		{"counting-network", 5, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			n := renaming.CompileCountingNetwork(8).Instantiate(mem)
			return func(p renaming.Proc) {
				for i := 0; i < 2; i++ {
					n.Next(p)
				}
			}, n.Reset
		}},
		{"long-lived", 5, func(mem renaming.Mem) (func(p renaming.Proc), func()) {
			l := renaming.NewLongLived(mem)
			return func(p renaming.Proc) {
				a := l.Acquire(p)
				b := l.Acquire(p)
				l.Release(p, a)
				l.Acquire(p)
				l.Release(p, b)
			}, l.Reset
		}},
	}
}

// TestResetPathBitIdenticalToFresh is the acceptance test: for every
// object and every (seed, adversary) point, the reused instance produces
// exactly the Stats a fresh construction produces.
func TestResetPathBitIdenticalToFresh(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			// One long-lived runtime + instance, dirtied by a warmup run.
			rt := renaming.NewSim(999, renaming.RandomSchedule(999))
			body, reset := tc.build(rt)
			rt.Run(tc.k, body)

			for _, ap := range advMatrix() {
				for seed := uint64(0); seed < 4; seed++ {
					t.Run(fmt.Sprintf("%s/seed=%d", ap.name, seed), func(t *testing.T) {
						fresh := renaming.NewSim(seed, ap.make(seed))
						fBody, _ := tc.build(fresh)
						want := fresh.Run(tc.k, fBody)

						reset()
						rt.Reset(seed, ap.make(seed))
						got := rt.Run(tc.k, body)

						if !reflect.DeepEqual(want, got) {
							t.Errorf("reset path diverged from fresh construction\nfresh: %+v\nreset: %+v", want, got)
						}
					})
				}
			}
		})
	}
}

// pooledGraph adapts an equivCase's (body, reset) pair to the Resettable
// object the serving pool manages.
type pooledGraph struct {
	body  func(p renaming.Proc)
	reset func()
}

func (g *pooledGraph) Reset() { g.reset() }

// TestPooledCheckoutBitIdenticalToFresh extends the reuse contract to the
// serving engine: an instance checked out of a serve.Pool — previously
// dirtied through an earlier checkout and recycled by Put — must replay
// every (seed, adversary) point bit-identically to a fresh construction.
// This is the same matrix as TestResetPathBitIdenticalToFresh, routed
// through the pool's checkout/recycle path instead of calling Reset by
// hand.
func TestPooledCheckoutBitIdenticalToFresh(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			pool := serve.NewWithRuntime(serve.Options{Shards: 1, PerShard: 1},
				func(uint64) shmem.Runtime { return sim.New(999, sim.NewRandom(999)) },
				func(mem shmem.Mem) *pooledGraph {
					body, reset := tc.build(mem)
					return &pooledGraph{body: body, reset: reset}
				})

			// Dirty the pooled instance through a checkout; Put recycles it.
			warm := pool.Get()
			warm.Runtime().Run(tc.k, warm.Obj.body)
			warm.Put()

			for _, ap := range advMatrix() {
				for seed := uint64(0); seed < 4; seed++ {
					t.Run(fmt.Sprintf("%s/seed=%d", ap.name, seed), func(t *testing.T) {
						fresh := renaming.NewSim(seed, ap.make(seed))
						fBody, _ := tc.build(fresh)
						want := fresh.Run(tc.k, fBody)

						in := pool.Get()
						in.Runtime().(*sim.Runtime).Reset(seed, ap.make(seed))
						got := in.Runtime().Run(tc.k, in.Obj.body)
						in.Put()

						if !reflect.DeepEqual(want, got) {
							t.Errorf("pooled checkout diverged from fresh construction\nfresh: %+v\npool:  %+v", want, got)
						}
					})
				}
			}
		})
	}
}

// TestResetPathNamesMatchFresh checks the visible outputs (the names), not
// just the accounting: same seed, same adversary, same names.
func TestResetPathNamesMatchFresh(t *testing.T) {
	const k = 8
	collect := func(rt *renaming.SimRuntime, sa *renaming.StrongAdaptive) []uint64 {
		names := make([]uint64, k)
		rt.Run(k, func(p renaming.Proc) {
			names[p.ID()] = sa.Rename(p, uint64(p.ID())+1)
		})
		return names
	}

	rt := renaming.NewSim(42, renaming.RandomSchedule(42))
	sa := renaming.CompileRenaming().Instantiate(rt)
	collect(rt, sa) // warmup execution to dirty the graph

	for seed := uint64(0); seed < 6; seed++ {
		fresh := renaming.NewSim(seed, renaming.RandomSchedule(seed))
		want := collect(fresh, renaming.CompileRenaming().Instantiate(fresh))

		sa.Reset()
		rt.Reset(seed, renaming.RandomSchedule(seed))
		got := collect(rt, sa)

		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: names diverged: fresh %v, reset %v", seed, want, got)
		}
	}
}
