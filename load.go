package renaming

import (
	"repro/internal/load"
)

// This file is the facade over internal/load, the workload harness:
// declarative load scenarios (open- and closed-loop arrival processes, op
// mixes, churn, crash storms) generated against the serving pools and
// measured with allocation-free log-bucketed latency histograms. See
// doc.go ("Load generation") for the model and BENCHMARKS.md ("The
// workload harness") for methodology and measurements; cmd/renameload is
// the CLI front end.

type (
	// Scenario is one declarative workload: an arrival process, an op mix,
	// a duration/op budget, optional churn (time-varying wave width — the
	// adaptive-contention regime) and an optional FaultPlan armed on every
	// execution wave.
	Scenario = load.Scenario
	// ArrivalSpec is a Scenario's arrival process (kind, rates, period,
	// think time).
	ArrivalSpec = load.Arrival
	// OpMix is a Scenario's operation mix, as integer weights over rename,
	// counter inc, counter read, and k-process execution waves.
	OpMix = load.Mix
	// ChurnSpec varies a scenario's wave width between MinK and MaxK over
	// time, so the live contention k(t) the algorithms see keeps changing.
	ChurnSpec = load.Churn
	// LoadReport is a scenario run's result: per-phase latency quantiles,
	// achieved-vs-offered rates, live-contention samples, and a verdict;
	// serializable to JSON.
	LoadReport = load.Report
	// LoadPhase is one phase row of a LoadReport.
	LoadPhase = load.PhaseReport
	// LoadTarget is the served system a scenario runs against: the rename
	// and counter pools plus the instantiation recipes the simulator
	// runner uses.
	LoadTarget = load.Target
	// LatencyHist is the allocation-free log-bucketed histogram behind the
	// harness's latency capture (exported for custom drivers).
	LatencyHist = load.Hist
)

// Arrival kinds of a Scenario.
const (
	// ArrivalClosed is the closed loop: each worker issues its next op when
	// the previous completes (plus think time); load self-limits.
	ArrivalClosed = load.Closed
	// ArrivalSteady is open-loop with deterministic arrivals at Rate.
	ArrivalSteady = load.Steady
	// ArrivalPoisson is open-loop with exponential inter-arrival gaps.
	ArrivalPoisson = load.Poisson
	// ArrivalBurst is open-loop square-wave load (Rate low, Peak high).
	ArrivalBurst = load.Burst
	// ArrivalRamp is open-loop linearly increasing load (Rate to Peak).
	ArrivalRamp = load.Ramp
)

// LoadCatalog returns the curated scenario set: steady, poisson, burst,
// ramp, churn (time-varying k with a crash plan armed), crashstorm, waves,
// readheavy, and closed. Every entry runs as-is under cmd/renameload.
func LoadCatalog() []Scenario { return load.Catalog() }

// FindScenario returns the catalog scenario with the given name
// (case-insensitive).
func FindScenario(name string) (Scenario, bool) { return load.Find(name) }

// NewLoadTarget builds the default served system: sharded pools of strong
// adaptive renamers and monotone-consistent counters with hardware
// test-and-set, seeded from seed.
func NewLoadTarget(seed uint64) *LoadTarget { return load.NewTarget(seed) }

// RunScenario executes a scenario on the native runtime against tg (nil
// builds a fresh NewLoadTarget(s.Seed)): open-loop kinds issue operations
// at scheduled arrival times and measure latency from the schedule, so
// server stalls queue arrivals behind them and surface in the tail
// (coordinated omission cannot hide them); closed-loop kinds measure pure
// service time. The report carries per-phase p50/p90/p99/p999/max,
// achieved-vs-offered rates, and sampled live contention.
func RunScenario(s Scenario, tg *LoadTarget) *LoadReport { return load.Run(s, tg) }

// RunScenarioSim executes a scenario on the deterministic simulator:
// latency becomes step complexity, and every report field except the
// elapsed wall time is a pure function of (seed, scenario) — the same
// scenario replays bit-identically per seed.
func RunScenarioSim(s Scenario, seed uint64) *LoadReport { return load.RunSim(s, seed) }

// SimReplayMatches runs s twice on the simulator with the same seed and
// reports whether the runs are bit-identical modulo the elapsed-wall-time
// field — the determinism gate behind renameload -runtime sim. The second
// report is returned, its verdict annotated on mismatch.
func SimReplayMatches(s Scenario, seed uint64) (*LoadReport, bool) {
	return load.SimReplayMatches(s, seed)
}
