// Parallel throughput benchmarks: the serving-engine suite (BENCH_3.json;
// see BENCHMARKS.md "Throughput"). Where bench_test.go measures one
// execution at a time, these measure sustained operation throughput from
// many goroutines — the regime the sharded pool exists for. Run with
// -cpu 1,2,4,8 to sweep the goroutine/CPU axis; the -cpu 1 row is the
// single-goroutine baseline of the scaling comparison.
//
// Three comparisons matter:
//
//   - PoolRename/PoolCounter vs the same name at higher -cpu: shard
//     scaling (flat on a single-core host; see BENCHMARKS.md for the
//     caveat).
//   - PoolRename vs UnpooledRename: what recycling saves over
//     instantiating a graph per request (both paths compile once).
//   - PoolCounter vs SharedCounter: sharded checkout vs all goroutines
//     hammering one shared instance.
package renaming_test

import (
	"sync/atomic"
	"testing"

	renaming "repro"
)

// BenchmarkPoolRenameThroughput serves one-shot renames from a sharded
// pool: checkout → Rename on a fresh graph → recycle. The per-op work is
// the solo-rename fast path (one splitter visit, one leaf comparator),
// so the measurement is dominated by the serving engine itself.
func BenchmarkPoolRenameThroughput(b *testing.B) {
	pool := renaming.NewRenamingPool()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool.Do(func(p renaming.Proc, sa *renaming.StrongAdaptive) {
				sa.Rename(p, 1)
			})
		}
	})
	reportPoolStats(b, pool.Stats())
}

// BenchmarkUnpooledRenameThroughput is the no-pool baseline for the same
// operation: instantiate a graph per request (compile is still cached
// process-wide — this isolates exactly what pooling saves).
func BenchmarkUnpooledRenameThroughput(b *testing.B) {
	bp := renaming.CompileRenaming(renaming.WithHardwareTAS())
	rt := renaming.NewNative(1).(*renaming.Native)
	var ids atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := rt.NewProc(int(ids.Add(1)))
		for pb.Next() {
			sa := bp.Instantiate(rt)
			sa.Rename(p, 1)
		}
	})
}

// BenchmarkPoolCounterThroughput serves counter increments+reads from a
// sharded pool.
func BenchmarkPoolCounterThroughput(b *testing.B) {
	pool := renaming.NewCounterPool()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool.Do(func(p renaming.Proc, c *renaming.Counter) {
				c.Inc(p)
				c.Read(p)
			})
		}
	})
	reportPoolStats(b, pool.Stats())
}

// BenchmarkSharedCounterThroughput is the unsharded baseline: every
// goroutine hammers one shared counter instance (contended increments on
// one object graph instead of sharded checkouts).
func BenchmarkSharedCounterThroughput(b *testing.B) {
	rt := renaming.NewNative(1).(*renaming.Native)
	c := renaming.CompileCounter(renaming.WithHardwareTAS()).Instantiate(rt)
	var ids atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := rt.NewProc(int(ids.Add(1)))
		for pb.Next() {
			c.Inc(p)
			c.Read(p)
		}
	})
}

// BenchmarkPoolExecuteThroughput serves whole k-process renaming
// executions from the pool: each request checks out a graph, runs k
// goroutine-processes against it, and recycles. Requests on different
// instances share no memory; the -cpu sweep measures request-level
// scaling.
func BenchmarkPoolExecuteThroughput(b *testing.B) {
	const k = 8
	pool := renaming.NewRenamingPool()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pool.Execute(k, func(p renaming.Proc, sa *renaming.StrongAdaptive) {
				sa.Rename(p, uint64(p.ID())+1)
			})
		}
	})
	reportPoolStats(b, pool.Stats())
}

// reportPoolStats turns the pool's checkout accounting into benchmark
// metrics: instances the pool grew to, and the overflow share of
// checkouts.
func reportPoolStats(b *testing.B, st renaming.PoolStats) {
	b.ReportMetric(float64(st.Instances), "instances")
	total := st.Hits + st.Overflows
	if total > 0 {
		b.ReportMetric(100*float64(st.Overflows)/float64(total), "overflow-%")
	}
}
