package renaming_test

import (
	"reflect"
	"testing"

	renaming "repro"
)

// recordedRename runs one recorded (optionally crash-injected) k-process
// renaming execution on rt through the facade's execution layer.
func recordedRename(rt renaming.Runtime, k int, plan *renaming.FaultPlan) (*renaming.EventLog, *renaming.Stats, []uint64) {
	ex := renaming.NewExecution(rt, k)
	if plan != nil {
		ex.Faults(plan)
	}
	log := ex.Record()
	ren := renaming.NewRenaming(rt)
	names := make([]uint64, k)
	st := ex.Run(func(p renaming.Proc) {
		n := ren.Rename(p, uint64(p.ID())+1)
		names[p.ID()] = n
		ex.MarkName(p, n)
	})
	return log, st, names
}

// TestExecutionDeterminismFacade pins the acceptance criterion at the
// facade: same (seed, adversary, FaultPlan) ⇒ identical EventLog on the
// simulator.
func TestExecutionDeterminismFacade(t *testing.T) {
	const k = 6
	plan := func() *renaming.FaultPlan {
		return renaming.CrashAtStep(map[int]uint64{1: 4, 4: 20})
	}
	for seed := uint64(0); seed < 3; seed++ {
		logA, _, _ := recordedRename(renaming.NewSim(seed, renaming.RandomSchedule(seed)), k, plan())
		logB, _, _ := recordedRename(renaming.NewSim(seed, renaming.RandomSchedule(seed)), k, plan())
		if !reflect.DeepEqual(logA.Events(), logB.Events()) {
			t.Fatalf("seed %d: same (seed, adversary, plan) recorded different logs", seed)
		}
		if err := renaming.CheckRenamingTrace(logA); err != nil {
			t.Fatalf("seed %d: recorded execution invalid: %v", seed, err)
		}
	}
}

// TestNativeRecordReplayFacade pins the cross-runtime acceptance criterion
// at the facade: a crash-injected execution recorded on the native runtime
// replays bit-identically through the simulator — same names, same
// per-proc counts, checker-clean.
func TestNativeRecordReplayFacade(t *testing.T) {
	const k = 6
	for seed := uint64(1); seed <= 3; seed++ {
		rt := renaming.NewNative(seed)
		log, st, names := recordedRename(rt, k, renaming.CrashAtStep(map[int]uint64{2: 4}))
		if err := renaming.CheckRenamingTrace(log); err != nil {
			t.Fatalf("seed %d: native recording invalid: %v", seed, err)
		}

		srt := renaming.Replay(log)
		ren := renaming.NewRenaming(srt)
		renames := make([]uint64, k)
		rst := srt.Run(k, func(p renaming.Proc) {
			renames[p.ID()] = ren.Rename(p, uint64(p.ID())+1)
		})
		if !reflect.DeepEqual(rst.Crashed, st.Crashed) {
			t.Fatalf("seed %d: replay crash set %v != native %v", seed, rst.Crashed, st.Crashed)
		}
		if !reflect.DeepEqual(rst.PerProc, st.PerProc) {
			t.Fatalf("seed %d: replay per-proc counts diverged from the native recording", seed)
		}
		for p := 0; p < k; p++ {
			if !st.Crashed[p] && renames[p] != names[p] {
				t.Fatalf("seed %d: survivor %d got name %d on replay, %d natively", seed, p, renames[p], names[p])
			}
		}
	}
}

// TestCounterTraceFacade records a native counter execution with bracketed
// marks and checks monotone consistency over the trace.
func TestCounterTraceFacade(t *testing.T) {
	const k = 4
	rt := renaming.NewNative(3)
	ex := renaming.NewExecution(rt, k)
	log := ex.Record()
	ctr := renaming.NewCounter(rt, renaming.WithHardwareTAS())
	ex.Run(func(p renaming.Proc) {
		for i := 0; i < 3; i++ {
			ex.MarkIncStart(p)
			ctr.Inc(p)
			ex.MarkIncEnd(p)
			ex.MarkReadStart(p)
			ex.MarkRead(p, ctr.Read(p))
		}
	})
	if err := renaming.CheckCounterTrace(log); err != nil {
		t.Fatalf("native counter trace failed monotone consistency: %v", err)
	}
}

// TestPoolExecFaults drives fault injection through a pooled instance: the
// serving engine's Execute path and the execution layer are the same
// machinery, so a checked-out instance can run chaos executions and recycle
// cleanly afterwards.
func TestPoolExecFaults(t *testing.T) {
	const k = 5
	pool := renaming.NewRenamingPool(renaming.WithShards(1), renaming.WithPerShard(1))
	in := pool.Get()
	ex := in.Exec(k)
	ex.Faults(renaming.CrashAtStep(map[int]uint64{0: 2}))
	names := make([]uint64, k)
	st := ex.Run(func(p renaming.Proc) {
		names[p.ID()] = in.Obj.Rename(p, uint64(p.ID())+1)
	})
	if st.Crashed == nil || !st.Crashed[0] {
		t.Fatalf("pooled chaos execution: crash did not fire (%v)", st.Crashed)
	}
	in.Put()

	// The recycled instance must serve a clean tight execution again.
	stats := pool.Execute(k, func(p renaming.Proc, sa *renaming.StrongAdaptive) {
		names[p.ID()] = sa.Rename(p, uint64(p.ID())+1)
	})
	if stats.Crashed != nil {
		t.Fatalf("disarmed pooled execution reported crash accounting: %v", stats.Crashed)
	}
	seen := make(map[uint64]bool)
	for p, n := range names {
		if n < 1 || n > k || seen[n] {
			t.Fatalf("post-chaos checkout not tight: proc %d got %d (names %v)", p, n, names)
		}
		seen[n] = true
	}
}
