package renaming_test

// The wire-protocol benchmark suite: the loopback cost of serving
// operations over the batched binary protocol (internal/wire +
// internal/netserve), swept by batch size. Reported ns/op is per
// OPERATION, not per frame — the loop below issues b.N ops in frames of
// the given batch size — so the batch sweep reads directly as the syscall
// amortization curve: batch=1 pays the full two-syscall round trip per
// op; batch=64 spreads it over 64 ops. The in-process counterpart rows
// (BenchmarkPoolRenameThroughput etc.) bound the wire overhead from
// below; BENCHMARKS.md "The wire protocol" holds the comparison table.

import (
	"fmt"
	"net"
	"testing"
	"time"

	renaming "repro"
)

// newWireBench starts a loopback server and one pipelining client.
func newWireBench(b *testing.B) *renaming.WireClient {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	srv := renaming.ServeWire(ln, nil)
	c, err := renaming.DialWire(srv.Addr().String(), 2*time.Second)
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	b.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c
}

// benchWireBatch issues b.N operations in frames of the given batch size
// through one explicit batch (Commit = one request frame, one reply
// frame), so ns/op is the amortized per-operation wire cost.
func benchWireBatch(b *testing.B, batch int, add func(bt *renaming.WireBatch, i int)) {
	c := newWireBench(b)
	bt := c.NewBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := batch
		if rem := b.N - done; n > rem {
			n = rem
		}
		bt.Reset()
		for i := 0; i < n; i++ {
			add(bt, i)
		}
		if _, err := bt.Commit(); err != nil {
			b.Fatal(err)
		}
		done += n
	}
}

// BenchmarkWireRename is the headline batch-size sweep: renames over the
// loopback wire at batch 1, 8, and 64.
func BenchmarkWireRename(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchWireBatch(b, batch, func(bt *renaming.WireBatch, i int) {
				bt.Rename(uint64(i & 7))
			})
		})
	}
}

// BenchmarkWireRenameTraced is the tracing A/B row: the batch=64 rename
// sweep with end-to-end tracing armed — every frame carries a trace id
// and stage echo, and 1-in-64 trace ids record spans — against the
// untraced BenchmarkWireRename/batch=64 baseline. The delta is the whole
// observed cost of the tentpole on the serving path; the disarmed path
// is additionally pinned to stay within the noise of the BENCH_9
// baseline (scripts/bench.sh gate).
func BenchmarkWireRenameTraced(b *testing.B) {
	c := newWireBench(b)
	col := renaming.NewTraceCollector()
	defer col.Close()
	col.Arm(64)
	c.SetTrace(col, -1)
	bt := c.NewBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := 64
		if rem := b.N - done; n > rem {
			n = rem
		}
		bt.Reset()
		for i := 0; i < n; i++ {
			bt.Rename(uint64(i & 7))
		}
		if _, err := bt.Commit(); err != nil {
			b.Fatal(err)
		}
		done += n
	}
}

// BenchmarkWireCounterInc is the counter path over the wire at a working
// batch size.
func BenchmarkWireCounterInc(b *testing.B) {
	benchWireBatch(b, 8, func(bt *renaming.WireBatch, i int) {
		bt.Inc(uint64(i & 7))
	})
}

// BenchmarkWirePipelinedDo measures the group-commit path: concurrent Do
// callers coalesce into shared frames, so the per-op cost falls as
// parallelism rises — the adaptive version of the explicit batch sweep.
func BenchmarkWirePipelinedDo(b *testing.B) {
	c := newWireBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Do(renaming.WireRename, 3); err != nil {
				b.Fatal(err)
			}
		}
	})
}
